//! The multi-threaded sharded day-simulation engine.
//!
//! [`ResolverSim::run_day_sharded`] replays one day of traffic on several
//! worker threads and produces a [`DayReport`] **bit-identical** to the
//! single-threaded [`ResolverSim::run_day_with_faults`] for any thread
//! count, including under an active [`FaultPlan`]. Three properties make
//! that possible:
//!
//! 1. **Pure routing.** [`CacheCluster::route_hash`] +
//!    [`CacheCluster::member_for_hash`] compute, without advancing any
//!    cluster state, exactly the member [`CacheCluster::route`] would
//!    pick — round-robin sequence numbers are reconstructed from the
//!    cursor plus the event's global index, and member crash windows are
//!    replayed against a local copy of the down flags. A sequential
//!    partition pass therefore assigns every event its owner up front.
//! 2. **Disjoint ownership.** Each cluster member's cache state is touched
//!    only by the shard that owns it (member `m` → shard `m % shards`),
//!    and each shard's stream preserves the global event order, so the
//!    per-member cache evolution is identical to the single-threaded
//!    replay no matter how threads interleave.
//! 3. **Commutative accounting + index-keyed randomness.** Everything a
//!    worker writes outside its members' caches is a sum or key-wise
//!    counter merge in its private partial [`DayReport`], and the only
//!    randomness — packet-loss sampling — is a pure function of
//!    `(plan seed, day, global event index, attempt)`, i.e. a
//!    scheduling-independent per-event RNG stream derived by SplitMix64
//!    hashing. Merging the partials in shard order reproduces the
//!    single-threaded totals exactly.
//!
//! Member crash windows are the delicate part: the single-threaded loop
//! restarts a member *cold* (entries cleared) at the first event on or
//! after the window's end. The partition pass records those restart
//! instants as global event indices; each worker clears an owned member
//! lazily before processing the first owned event at or past a recorded
//! instant, and drains any leftover instants after its stream ends. A
//! window that contains no events never triggers a clear — exactly like
//! the single-threaded fault sync, which only runs per event.

use std::collections::VecDeque;
use std::time::Instant;

use dnsnoise_cache::{CacheCluster, CacheKey, LoadBalance, MemberShard};
use dnsnoise_dns::Ttl;
use dnsnoise_workload::{DayTrace, GroundTruth, ShardedTrace};

use crate::admission::{AdmissionState, OverloadConfig};
use crate::faults::FaultPlan;
use crate::metrics::MetricsRegistry;
use crate::observer::Observer;
use crate::sim::{diff_stats, process_event, DayReport, EventCtx, ResolverSim};

/// An [`Observer`] that can be split across shard workers and merged
/// back.
///
/// The engine calls [`ShardObserver::fork`] once per shard (on the main
/// thread, in shard order) before the workers start, hands each worker
/// its fork, and after all workers have joined feeds the forks back into
/// the original via [`ShardObserver::absorb`] — again in shard order, so
/// absorption is deterministic in the shard count.
pub trait ShardObserver: Observer + Send + Sized {
    /// Creates an empty observer of the same configuration to run on one
    /// shard. A fork starts with no collected state: the parent's state
    /// is never duplicated into workers.
    fn fork(&self) -> Self;

    /// Folds a shard's collected state back into `self`.
    fn absorb(&mut self, shard: Self);
}

/// The no-op observer shards trivially.
impl ShardObserver for () {
    fn fork(&self) {}
    fn absorb(&mut self, _shard: ()) {}
}

/// One cluster member as owned by a shard worker: its cache handles plus
/// the cold-restart instants the partition pass recorded for it.
struct WorkerMember<'a> {
    handles: MemberShard<'a>,
    restarts: VecDeque<u64>,
    /// The member's admission queue and rate-limit state. Owned by the
    /// shard worker like the caches, so the backlog/token evolution is
    /// identical to the single-threaded replay. Persists across member
    /// crash restarts (a restart clears caches, not the inbound queue
    /// model), matching the serial loop which never resets it mid-day.
    admission: AdmissionState,
}

impl WorkerMember<'_> {
    /// Applies every recorded restart at or before `index`: the member
    /// loses its entries, exactly as
    /// [`CacheCluster::restart_member_cold`] would have done at that
    /// point of the single-threaded replay.
    fn catch_up_restarts(&mut self, index: u64) {
        while self.restarts.front().is_some_and(|&at| at <= index) {
            self.restarts.pop_front();
            self.handles.cache.clear_entries();
            self.handles.negative.clear_entries();
        }
    }

    /// Applies restarts that fell after the member's last owned event so
    /// day-end cache contents match the single-threaded replay.
    fn drain_restarts(&mut self) {
        if !self.restarts.is_empty() {
            self.restarts.clear();
            self.handles.cache.clear_entries();
            self.handles.negative.clear_entries();
        }
    }
}

impl ResolverSim {
    /// Replays one day of traffic on `threads` worker threads.
    ///
    /// **Deprecated**: use the [`ResolverSim::day`] builder instead —
    /// `sim.day(&trace).ground_truth(gt).faults(&plan).threads(n)
    /// .observer(&mut o).run()`. This wrapper remains only for source
    /// compatibility.
    ///
    /// The day's events are partitioned by owning cluster member
    /// (consistent with [`CacheCluster::route`], including failover while
    /// members are crashed), members are dealt round-robin onto
    /// `min(threads, members)` shards, each shard replays its streams on
    /// its own thread, and the per-shard partial reports are merged at a
    /// barrier. The result — the returned [`DayReport`] *and* the
    /// cluster's cache state afterwards — is bit-identical to
    /// [`ResolverSim::run_day_with_faults`] for every `threads` value;
    /// `threads <= 1` (and a single-member cluster) simply delegates to
    /// it.
    ///
    /// `observer` must be a [`ShardObserver`] so each worker can collect
    /// into a private fork; forks are absorbed in shard order after the
    /// join, making observer output deterministic for a fixed shard
    /// count (though, unlike the report, not necessarily identical
    /// *across* shard counts — collectors that retain per-event state may
    /// order it differently).
    pub fn run_day_sharded<O: ShardObserver>(
        &mut self,
        trace: &DayTrace,
        ground_truth: Option<&GroundTruth>,
        observer: &mut O,
        plan: &FaultPlan,
        threads: usize,
    ) -> DayReport {
        self.day(trace)
            .ground_truth(ground_truth)
            .faults(plan)
            .threads(threads)
            .observer(observer)
            .run()
    }
}

/// The sharded replay behind [`DayRun::run`](crate::DayRun::run). The
/// caller (the builder's dispatch) has already clamped `shards` to
/// `2..=members` and ruled out the empty trace.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded<O: ShardObserver>(
    sim: &mut ResolverSim,
    trace: &DayTrace,
    ground_truth: Option<&GroundTruth>,
    plan: Option<&FaultPlan>,
    overload: Option<&OverloadConfig>,
    shards: usize,
    observer: &mut O,
    mut metrics: Option<&mut MetricsRegistry>,
) -> DayReport {
    let default_plan;
    let plan = match plan {
        Some(p) => p,
        None => {
            default_plan = FaultPlan::default();
            &default_plan
        }
    };
    let members = sim.cluster.members();
    if let Some(m) = metrics.as_deref_mut() {
        m.set_overload_enabled(overload.is_some());
        m.begin_day(trace.day, members);
    }

    let stats_before = sim.cluster.total_stats();
    let ctx = EventCtx {
        plan,
        day: trace.day,
        stale_window: sim.config.stale_window.unwrap_or(Ttl::ZERO),
        low_priority: sim.config.low_priority.clone(),
        faults_active: !plan.is_empty(),
        overload,
    };

    // Partition pass: replay the routing decisions (and the member
    // crash schedule they depend on) purely, without touching cache
    // state.
    // lint:allow(wall-clock): feeds PhaseTimings, which is excluded from deterministic exports
    let partition_start = Instant::now();
    let rr0 = sim.cluster.rr_cursor();
    let drive_members = !plan.member_outages.is_empty() || sim.cluster.any_member_down();
    let mut down = sim.cluster.down_flags();
    let mut restarts: Vec<Vec<u64>> = vec![Vec::new(); members];
    let cluster = &sim.cluster;
    let sharded = ShardedTrace::partition(&trace.events, shards, |index, event| {
        if drive_members {
            for (m, flag) in down.iter_mut().enumerate() {
                let want_down = plan.member_down(m, event.time);
                if want_down != *flag {
                    *flag = want_down;
                    if !want_down {
                        restarts[m].push(index);
                    }
                }
            }
        }
        let key = CacheKey::new(event.name.clone(), event.qtype);
        let h = cluster.route_hash(event.client, &key, rr0 + index);
        CacheCluster::member_for_hash(h, &down)
    });
    let day_end_down = down;
    let partition_elapsed = partition_start.elapsed();

    // Deal members (with their restart schedules) onto shards.
    let mut worker_members: Vec<Vec<WorkerMember<'_>>> = (0..shards).map(|_| Vec::new()).collect();
    for (m, (handles, member_restarts)) in
        sim.cluster.member_shards().into_iter().zip(restarts).enumerate()
    {
        worker_members[m % shards].push(WorkerMember {
            handles,
            restarts: member_restarts.into(),
            admission: AdmissionState::default(),
        });
    }
    let forks: Vec<O> = (0..shards).map(|_| observer.fork()).collect();
    // Metric forks mirror observer forks: created on the main thread in
    // shard order, absorbed in shard order after the join.
    let metric_forks: Vec<Option<MetricsRegistry>> =
        (0..shards).map(|_| metrics.as_deref().map(MetricsRegistry::fork)).collect();

    // Run the shard workers; each builds a private partial report.
    // lint:allow(wall-clock): feeds PhaseTimings, which is excluded from deterministic exports
    let replay_start = Instant::now();
    let partials: Vec<(DayReport, O, Option<MetricsRegistry>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = worker_members
            .into_iter()
            .zip(forks.into_iter().zip(metric_forks))
            .enumerate()
            .map(|(s, (mut owned, (mut fork, mut metric_fork)))| {
                let stream = sharded.shard(s);
                let ctx = &ctx;
                scope.spawn(move || {
                    let mut partial = DayReport { day: ctx.day, ..DayReport::default() };
                    for routed in stream {
                        let wm = &mut owned[routed.member / shards];
                        wm.catch_up_restarts(routed.index);
                        process_event(
                            ctx,
                            routed.index,
                            routed.member,
                            routed.event,
                            ground_truth,
                            wm.handles.cache,
                            wm.handles.negative,
                            &mut partial,
                            &mut fork,
                            metric_fork.as_mut(),
                            ctx.overload.is_some().then_some(&mut wm.admission),
                        );
                    }
                    for wm in &mut owned {
                        wm.drain_restarts();
                    }
                    (partial, fork, metric_fork)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });
    let replay_elapsed = replay_start.elapsed();

    // Deterministic merge in shard order: reports through the canonical
    // `DayReport::merge_partials`, observers and registries via absorb.
    // lint:allow(wall-clock): feeds PhaseTimings, which is excluded from deterministic exports
    let merge_start = Instant::now();
    let mut shard_reports = Vec::with_capacity(partials.len());
    for (partial, fork, metric_fork) in partials {
        shard_reports.push(partial);
        observer.absorb(fork);
        if let (Some(m), Some(shard_metrics)) = (metrics.as_deref_mut(), metric_fork) {
            m.absorb(shard_metrics);
        }
    }
    let mut report = DayReport::merge_partials(trace.day, &shard_reports);
    let merge_elapsed = merge_start.elapsed();

    // Sync the cluster state the workers bypassed: the round-robin
    // cursor and the day-end crash flags (entries were already
    // cleared at the replayed restart instants).
    if sim.cluster.strategy() == LoadBalance::RoundRobin {
        sim.cluster.advance_rr_cursor(trace.events.len() as u64);
    }
    for (m, flag) in day_end_down.into_iter().enumerate() {
        sim.cluster.set_member_flag(m, flag);
    }

    report.cache = diff_stats(&stats_before, &sim.cluster.total_stats());

    if let Some(m) = metrics {
        m.phases_mut().add_partition(partition_elapsed);
        m.phases_mut().add_replay(replay_elapsed);
        m.phases_mut().add_merge(merge_elapsed);
        m.set_day_end(&sim.cluster.member_occupancy(), &sim.cluster.down_flags(), &report.cache);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, OutageScope};
    use crate::sim::SimConfig;
    use dnsnoise_dns::Timestamp;
    use dnsnoise_workload::{Scenario, ScenarioConfig};

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(ScenarioConfig::paper_epoch(0.4).with_scale(0.03), seed)
    }

    fn eventful_plan() -> FaultPlan {
        FaultPlan::default()
            .with_seed(7)
            .with_packet_loss(0.2)
            .with_outage(
                OutageScope::All,
                FaultKind::Timeout,
                Timestamp::from_secs(3 * 3_600),
                Timestamp::from_secs(5 * 3_600),
            )
            .with_member_outage(
                1,
                Timestamp::from_secs(8 * 3_600),
                Timestamp::from_secs(14 * 3_600),
            )
    }

    #[test]
    fn sharded_matches_single_thread_without_faults() {
        let s = scenario(21);
        let trace = s.generate_day(0);
        let plan = FaultPlan::default();
        let mut reference = ResolverSim::new(SimConfig::default());
        let expected =
            reference.run_day_with_faults(&trace, Some(s.ground_truth()), &mut (), &plan);
        for threads in [2, 3, 4, 8] {
            let mut sim = ResolverSim::new(SimConfig::default());
            let got = sim.run_day_sharded(&trace, Some(s.ground_truth()), &mut (), &plan, threads);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn sharded_matches_single_thread_under_faults() {
        let s = scenario(22);
        let trace = s.generate_day(0);
        let plan = eventful_plan();
        let mut reference = ResolverSim::new(SimConfig::default());
        let expected =
            reference.run_day_with_faults(&trace, Some(s.ground_truth()), &mut (), &plan);
        for threads in [2, 4, 8] {
            let mut sim = ResolverSim::new(SimConfig::default());
            let got = sim.run_day_sharded(&trace, Some(s.ground_truth()), &mut (), &plan, threads);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn sharded_leaves_identical_cluster_state() {
        // Day 0 sharded, day 1 single-threaded: if the sharded run left
        // any cache state (entries, counters, rr cursor, crash flags)
        // different, day 1 would diverge.
        for strategy in [LoadBalance::HashClient, LoadBalance::RoundRobin, LoadBalance::HashName] {
            let s = scenario(23);
            let d0 = s.generate_day(0);
            let d1 = s.generate_day(1);
            let plan = eventful_plan();
            let config = SimConfig { load_balance: strategy, ..SimConfig::default() };

            let mut reference = ResolverSim::new(config.clone());
            reference.run_day_with_faults(&d0, Some(s.ground_truth()), &mut (), &plan);
            let expected =
                reference.run_day_with_faults(&d1, Some(s.ground_truth()), &mut (), &plan);

            let mut sim = ResolverSim::new(config);
            sim.run_day_sharded(&d0, Some(s.ground_truth()), &mut (), &plan, 4);
            let got = sim.run_day_with_faults(&d1, Some(s.ground_truth()), &mut (), &plan);
            assert_eq!(got, expected, "strategy={strategy:?}");
        }
    }

    #[test]
    fn one_thread_delegates_to_reference_path() {
        let s = scenario(24);
        let trace = s.generate_day(0);
        let mut a = ResolverSim::new(SimConfig::default());
        let mut b = ResolverSim::new(SimConfig::default());
        let ra = a.run_day_sharded(&trace, None, &mut (), &FaultPlan::default(), 1);
        let rb = b.run_day(&trace, None, &mut ());
        assert_eq!(ra, rb);
    }

    #[test]
    fn thread_count_beyond_members_is_clamped() {
        let s = scenario(25);
        let trace = s.generate_day(0);
        let config = SimConfig { members: 2, ..SimConfig::default() };
        let mut reference = ResolverSim::new(config.clone());
        let expected = reference.run_day(&trace, None, &mut ());
        let mut sim = ResolverSim::new(config);
        let got = sim.run_day_sharded(&trace, None, &mut (), &FaultPlan::default(), 64);
        assert_eq!(got, expected);
    }
}
