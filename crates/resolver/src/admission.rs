//! Deterministic admission control: bounded per-member queues, per-client
//! token buckets, and NXDOMAIN response-rate-limiting (RRL).
//!
//! A real recursive under a random-subdomain flood protects itself by
//! shedding load *before* the expensive work: cache hits are served from
//! the fast path, but a query that needs an upstream fetch must claim a
//! slot in a bounded per-member queue drained at a simulated service
//! rate. When the queue saturates, the resolver degrades gracefully —
//! clients that exceed their token budget (flood suspects) are refused
//! first, stale entries are served in place of a drop where RFC 8767
//! allows, and only then are queries dropped outright.
//!
//! # Determinism contract
//!
//! Every decision here is a pure function of the owning member's private
//! [`AdmissionState`] and the event being processed. State advances in
//! member-stream order — the same order in the single-threaded loop and
//! in the sharded engine (each member is owned by exactly one shard) — so
//! an attacked day replays bit-identically for any thread count, exactly
//! like the fault engine. No wall clock, no scheduling, no randomness.

use std::collections::HashMap;

use dnsnoise_dns::Name;

/// Knobs of the admission-control stage. Attached to a run via
/// [`DayRun::overload`](crate::DayRun::overload); absent config means the
/// stage is compiled out of the replay entirely (bit-identical to main).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Miss-path queries a member may hold queued before dropping.
    pub queue_depth: u64,
    /// Queued queries one member retires per simulated second.
    pub service_rate: u64,
    /// Token-bucket refill per client per second; clients querying faster
    /// than this are flood suspects under pressure.
    pub client_rate: u64,
    /// Token-bucket capacity (burst allowance) per client.
    pub client_burst: u64,
    /// Enable NXDOMAIN response-rate-limiting.
    pub rrl: bool,
    /// RRL budget: NXDOMAIN fetches allowed per second per member for
    /// names under one registered (2-label) zone.
    pub rrl_limit: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_depth: 64,
            service_rate: 200,
            client_rate: 20,
            client_burst: 40,
            rrl: false,
            rrl_limit: 50,
        }
    }
}

impl OverloadConfig {
    /// Returns the config with a different queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_queue_depth(mut self, depth: u64) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        self.queue_depth = depth;
        self
    }

    /// Returns the config with RRL enabled at `limit` NXDOMAINs per
    /// second per member per registered zone.
    pub fn with_rrl(mut self, limit: u64) -> Self {
        self.rrl = true;
        self.rrl_limit = limit.max(1);
        self
    }

    /// Returns the config with a different per-member service rate.
    pub fn with_service_rate(mut self, rate: u64) -> Self {
        self.service_rate = rate.max(1);
        self
    }
}

/// What the admission stage decided for one miss-path query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The query claimed a queue slot and may go upstream.
    Admit,
    /// The queue is full (or the query is an RRL casualty): no response.
    Drop,
    /// The query was refused to protect the service (token bucket or RRL).
    RateLimit,
}

#[derive(Debug, Clone, Copy)]
struct ClientBucket {
    tokens: u64,
    last_secs: u64,
}

#[derive(Debug, Clone, Copy)]
struct RrlWindow {
    window_secs: u64,
    count: u64,
}

/// One member's admission bookkeeping: queue backlog, per-client token
/// buckets, and per-zone RRL windows. Owned by whichever shard owns the
/// member, mutated only in member-stream order.
#[derive(Debug, Clone, Default)]
pub struct AdmissionState {
    backlog: u64,
    peak_backlog: u64,
    last_secs: Option<u64>,
    buckets: HashMap<u64, ClientBucket>,
    rrl: HashMap<Name, RrlWindow>,
}

impl AdmissionState {
    /// Drains the queue for the simulated time that passed since the last
    /// event this member saw.
    fn advance(&mut self, cfg: &OverloadConfig, now_secs: u64) {
        if let Some(last) = self.last_secs {
            let elapsed = now_secs.saturating_sub(last);
            self.backlog = self.backlog.saturating_sub(elapsed.saturating_mul(cfg.service_rate));
        }
        self.last_secs = Some(now_secs);
    }

    /// Takes one token from `client`'s bucket; `false` means the client
    /// is over budget (a flood suspect).
    fn take_token(&mut self, cfg: &OverloadConfig, client: u64, now_secs: u64) -> bool {
        let bucket = self
            .buckets
            .entry(client)
            .or_insert(ClientBucket { tokens: cfg.client_burst, last_secs: now_secs });
        let elapsed = now_secs.saturating_sub(bucket.last_secs);
        bucket.tokens = bucket
            .tokens
            .saturating_add(elapsed.saturating_mul(cfg.client_rate))
            .min(cfg.client_burst);
        bucket.last_secs = now_secs;
        if bucket.tokens > 0 {
            bucket.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Charges one NXDOMAIN fetch against the registered zone owning
    /// `name`; `true` means the per-second RRL budget is exhausted.
    fn rrl_exceeded(&mut self, cfg: &OverloadConfig, name: &Name, now_secs: u64) -> bool {
        let Some(zone) = name.nld(2) else { return false };
        let window = self.rrl.entry(zone).or_insert(RrlWindow { window_secs: now_secs, count: 0 });
        if window.window_secs != now_secs {
            window.window_secs = now_secs;
            window.count = 0;
        }
        window.count += 1;
        window.count > cfg.rrl_limit
    }

    /// Whether the member is under pressure: the queue is at or beyond
    /// half its depth, so suspect traffic starts being refused.
    fn under_pressure(&self, cfg: &OverloadConfig) -> bool {
        self.backlog.saturating_mul(2) >= cfg.queue_depth
    }

    /// Admission decision for one query that cannot be served from the
    /// member-local fast path (positive or negative cache hit) and would
    /// otherwise go upstream. `is_nxdomain` marks queries whose
    /// authoritative outcome is NXDOMAIN — the traffic RRL meters.
    pub(crate) fn admit(
        &mut self,
        cfg: &OverloadConfig,
        client: u64,
        name: &Name,
        now_secs: u64,
        is_nxdomain: bool,
    ) -> Admission {
        self.advance(cfg, now_secs);
        let in_budget = self.take_token(cfg, client, now_secs);
        if cfg.rrl && is_nxdomain && self.rrl_exceeded(cfg, name, now_secs) {
            return Admission::RateLimit;
        }
        if self.backlog >= cfg.queue_depth {
            return Admission::Drop;
        }
        if !in_budget && self.under_pressure(cfg) {
            return Admission::RateLimit;
        }
        self.backlog += 1;
        self.peak_backlog = self.peak_backlog.max(self.backlog);
        Admission::Admit
    }

    /// Current queue backlog (post-drain of the last processed event).
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Highest backlog the member's queue ever reached.
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog
    }
}

/// Shed/served accounting for one day under an [`OverloadConfig`]. All
/// counters stay zero when no config is attached, keeping overload-free
/// reports bit-identical to the plain simulation.
///
/// Conservation: `offered = admitted + dropped + rate_limited`, and
/// `dropped + rate_limited = shed_attack + shed_legit`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Query events seen while admission control was active.
    pub offered: u64,
    /// Events served normally (fast path or an admitted queue slot).
    pub admitted: u64,
    /// Events dropped because a member queue was full.
    pub dropped: u64,
    /// Events refused by the token bucket or RRL.
    pub rate_limited: u64,
    /// Shed events carrying the flood tag ([`ATTACK_TAG`]).
    ///
    /// [`ATTACK_TAG`]: dnsnoise_workload::ATTACK_TAG
    pub shed_attack: u64,
    /// Shed events from legitimate (non-flood) traffic.
    pub shed_legit: u64,
    /// Queries that would have been shed but were answered from a stale
    /// cache entry instead (RFC 8767 under pressure).
    pub stale_under_pressure: u64,
    /// Highest queue backlog any member reached (max over members).
    pub queue_peak: u64,
}

impl OverloadStats {
    /// Total shed responses.
    pub fn shed(&self) -> u64 {
        self.dropped + self.rate_limited
    }

    /// Fraction of offered queries shed; zero when nothing was offered.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// Folds another day's (or shard's) counters into this one. Sums
    /// except `queue_peak`, which is a max — commutative and associative,
    /// and equal to the serial global maximum because every member's
    /// backlog sequence is identical across thread counts.
    pub fn merge(&mut self, other: &OverloadStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.dropped += other.dropped;
        self.rate_limited += other.rate_limited;
        self.shed_attack += other.shed_attack;
        self.shed_legit += other.shed_legit;
        self.stale_under_pressure += other.stale_under_pressure;
        self.queue_peak = self.queue_peak.max(other.queue_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn cfg() -> OverloadConfig {
        OverloadConfig {
            queue_depth: 4,
            service_rate: 2,
            client_rate: 1,
            client_burst: 2,
            rrl: false,
            rrl_limit: 3,
        }
    }

    #[test]
    fn queue_fills_then_drops() {
        let c = cfg();
        let mut s = AdmissionState::default();
        // Four well-behaved clients fill the queue within one second…
        for client in 0..4 {
            assert_eq!(s.admit(&c, client, &name("a.example.com"), 10, false), Admission::Admit);
        }
        // …the fifth (still in token budget) is dropped: queue full.
        assert_eq!(s.admit(&c, 4, &name("a.example.com"), 10, false), Admission::Drop);
        assert_eq!(s.peak_backlog(), 4);
    }

    #[test]
    fn queue_drains_at_service_rate() {
        let c = cfg();
        let mut s = AdmissionState::default();
        for client in 0..4 {
            s.admit(&c, client, &name("a.example.com"), 10, false);
        }
        // One second later two slots have been serviced.
        assert_eq!(s.admit(&c, 4, &name("a.example.com"), 11, false), Admission::Admit);
        assert_eq!(s.backlog(), 3);
    }

    #[test]
    fn suspects_are_shed_first_under_pressure() {
        let c = cfg();
        let mut s = AdmissionState::default();
        // Client 7 burns its burst of 2 and hits pressure (backlog 2 ≥
        // depth/2), so its third query is rate-limited, not dropped.
        assert_eq!(s.admit(&c, 7, &name("a.example.com"), 10, false), Admission::Admit);
        assert_eq!(s.admit(&c, 7, &name("a.example.com"), 10, false), Admission::Admit);
        assert_eq!(s.admit(&c, 7, &name("a.example.com"), 10, false), Admission::RateLimit);
        // A fresh client is still admitted: shedding targeted the suspect.
        assert_eq!(s.admit(&c, 8, &name("a.example.com"), 10, false), Admission::Admit);
    }

    #[test]
    fn suspects_pass_when_queue_is_idle() {
        let c = OverloadConfig { queue_depth: 100, ..cfg() };
        let mut s = AdmissionState::default();
        for _ in 0..10 {
            // Over token budget but no pressure: still admitted.
            assert_eq!(s.admit(&c, 7, &name("a.example.com"), 10, false), Admission::Admit);
        }
    }

    #[test]
    fn rrl_meters_per_zone_per_second() {
        let c = OverloadConfig { rrl: true, queue_depth: 1000, client_burst: 1000, ..cfg() };
        let mut s = AdmissionState::default();
        for i in 0..3 {
            assert_eq!(
                s.admit(&c, i, &name(&format!("x{i}.victim.com")), 10, true),
                Admission::Admit
            );
        }
        // Fourth NXDOMAIN under victim.com in the same second: refused.
        assert_eq!(s.admit(&c, 9, &name("x9.victim.com"), 10, true), Admission::RateLimit);
        // Another zone is unaffected…
        assert_eq!(s.admit(&c, 9, &name("y.other.net"), 10, true), Admission::Admit);
        // …and the window resets next second.
        assert_eq!(s.admit(&c, 9, &name("z.victim.com"), 11, true), Admission::Admit);
    }

    #[test]
    fn token_buckets_refill() {
        let c = cfg();
        let mut s = AdmissionState::default();
        s.admit(&c, 7, &name("a.com"), 10, false);
        s.admit(&c, 7, &name("a.com"), 10, false);
        // Burst exhausted; 3 seconds later 2 tokens are back (capped at
        // burst) and the queue has drained.
        assert_eq!(s.admit(&c, 7, &name("a.com"), 13, false), Admission::Admit);
    }

    #[test]
    fn overload_stats_merge_sums_and_maxes() {
        let mut a = OverloadStats {
            offered: 10,
            admitted: 8,
            dropped: 1,
            rate_limited: 1,
            shed_attack: 2,
            shed_legit: 0,
            stale_under_pressure: 1,
            queue_peak: 5,
        };
        let b =
            OverloadStats { offered: 4, admitted: 4, queue_peak: 9, ..OverloadStats::default() };
        a.merge(&b);
        assert_eq!(a.offered, 14);
        assert_eq!(a.admitted, 12);
        assert_eq!(a.queue_peak, 9);
        assert_eq!(a.shed(), 2);
        assert!((a.shed_fraction() - 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn decisions_are_replay_deterministic() {
        let c = OverloadConfig { rrl: true, ..cfg() };
        let run = || {
            let mut s = AdmissionState::default();
            (0..200u64)
                .map(|i| {
                    s.admit(
                        &c,
                        i % 7,
                        &name(&format!("x{}.v.com", i % 13)),
                        10 + i / 20,
                        i % 3 == 0,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
