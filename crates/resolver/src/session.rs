//! Incremental event-at-a-time replay: the streaming counterpart of the
//! [`ResolverSim::day`](crate::ResolverSim::day) builder.
//!
//! An [`EventSession`] owns a [`ResolverSim`] and feeds it one
//! [`QueryEvent`] per [`EventSession::push`] call, running the *same*
//! per-event logic (`process_event`) as the single-threaded reference
//! replay. Because every push goes through the identical routing, cache,
//! and accounting code path, a session fed the events of a [`DayTrace`]
//! in order produces a [`DayReport`] bit-identical to
//! `sim.day(&trace).run()` for the fault-free, overload-free
//! configuration the streaming miner uses.
//!
//! The session is deliberately narrower than the batch builder: no fault
//! plan, no admission control, no metrics registry. Those knobs model
//! infrastructure failure drills, which are batch-replay experiments;
//! the streaming path models the steady-state deployment of the paper's
//! miner at a production monitoring point.
//!
//! # Examples
//!
//! ```
//! use dnsnoise_resolver::{EventSession, ResolverSim, SimConfig};
//! use dnsnoise_workload::{Scenario, ScenarioConfig};
//!
//! let s = Scenario::new(ScenarioConfig::paper_epoch(0.5).with_scale(0.02), 7);
//! let trace = s.generate_day(0);
//!
//! let mut session = EventSession::new(ResolverSim::new(SimConfig::default()), trace.day);
//! for event in &trace.events {
//!     session.push(event, Some(s.ground_truth()), &mut ());
//! }
//! let (report, _sim) = session.finish();
//!
//! let mut batch = ResolverSim::new(SimConfig::default());
//! let expected = batch.day(&trace).ground_truth(s.ground_truth()).run();
//! assert_eq!(report, expected);
//! ```

use dnsnoise_cache::{CacheKey, CacheStats};
use dnsnoise_dns::Ttl;
use dnsnoise_workload::{GroundTruth, QueryEvent};

use crate::faults::FaultPlan;
use crate::observer::Observer;
use crate::sim::{diff_stats, process_event, DayReport, EventCtx, ResolverSim};

/// An in-progress incremental replay of one day of traffic.
///
/// Create with [`EventSession::new`], feed events with
/// [`EventSession::push`], and call [`EventSession::finish`] to obtain
/// the [`DayReport`] and recover the simulator (whose caches carry over
/// to the next day, exactly as in batch multi-day replays).
#[derive(Debug)]
pub struct EventSession {
    sim: ResolverSim,
    /// The always-empty plan: streaming replays are fault-free, and an
    /// empty plan makes `process_event` behave exactly like the batch
    /// default-plan fallback.
    plan: FaultPlan,
    report: DayReport,
    stats_before: CacheStats,
    index: u64,
}

impl EventSession {
    /// Starts a session for simulated day `day` over `sim`, snapshotting
    /// the cluster's cache counters so [`EventSession::finish`] can report
    /// this day's deltas.
    pub fn new(sim: ResolverSim, day: u64) -> EventSession {
        let stats_before = sim.cluster.total_stats();
        EventSession {
            sim,
            plan: FaultPlan::default(),
            report: DayReport { day, ..DayReport::default() },
            stats_before,
            index: 0,
        }
    }

    /// Serves one event, updating the cluster caches and the running
    /// report, and invoking `observer` with the response exactly as the
    /// batch replay would. `ground_truth` (when available) attributes
    /// traffic to the Fig. 2 operator series; it never influences cache
    /// behaviour or per-record statistics.
    pub fn push<Obs: Observer + ?Sized>(
        &mut self,
        event: &QueryEvent,
        ground_truth: Option<&GroundTruth>,
        observer: &mut Obs,
    ) {
        let ctx = EventCtx {
            plan: &self.plan,
            day: self.report.day,
            stale_window: self.sim.config.stale_window.unwrap_or(Ttl::ZERO),
            low_priority: self.sim.config.low_priority.clone(),
            faults_active: false,
            overload: None,
        };
        let member =
            self.sim.cluster.route(event.client, &CacheKey::new(event.name.clone(), event.qtype));
        let shard = self.sim.cluster.member_mut(member);
        process_event(
            &ctx,
            self.index,
            member,
            event,
            ground_truth,
            shard.cache,
            shard.negative,
            &mut self.report,
            observer,
            None,
            None,
        );
        self.index += 1;
    }

    /// Re-labels the simulated day. Only meaningful before the first
    /// push: callers that learn the day from the stream itself (e.g. a
    /// miner fed from stdin) set it when the first event arrives.
    pub fn set_day(&mut self, day: u64) {
        self.report.day = day;
    }

    /// Events pushed so far.
    pub fn events_pushed(&self) -> u64 {
        self.index
    }

    /// Read-only view of the running report. The `cache` delta is only
    /// folded in by [`EventSession::finish`]; every other counter is
    /// current as of the last push.
    pub fn report_so_far(&self) -> &DayReport {
        &self.report
    }

    /// Closes the day: folds the cache-counter delta into the report and
    /// returns it together with the simulator for reuse on the next day.
    pub fn finish(self) -> (DayReport, ResolverSim) {
        let EventSession { sim, plan: _, mut report, stats_before, index: _ } = self;
        let stats_after = sim.cluster.total_stats();
        report.cache = diff_stats(&stats_before, &stats_after);
        (report, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use dnsnoise_workload::{Scenario, ScenarioConfig};

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(ScenarioConfig::paper_epoch(0.6).with_scale(0.02), seed)
    }

    #[test]
    fn incremental_replay_matches_batch_exactly() {
        for seed in [7, 301] {
            let s = scenario(seed);
            let trace = s.generate_day(0);

            let mut batch = ResolverSim::new(SimConfig::default());
            let expected = batch.day(&trace).ground_truth(s.ground_truth()).run();

            let mut session = EventSession::new(ResolverSim::new(SimConfig::default()), trace.day);
            for event in &trace.events {
                session.push(event, Some(s.ground_truth()), &mut ());
            }
            let (report, _) = session.finish();
            assert_eq!(report, expected, "seed {seed}");
        }
    }

    #[test]
    fn sessions_carry_cache_state_across_days() {
        let s = scenario(40);
        let mut batch = ResolverSim::new(SimConfig::default());
        let mut streamed = ResolverSim::new(SimConfig::default());
        for day in 0..2 {
            let trace = s.generate_day(day);
            let expected = batch.day(&trace).ground_truth(s.ground_truth()).run();
            let mut session = EventSession::new(streamed, trace.day);
            for event in &trace.events {
                session.push(event, Some(s.ground_truth()), &mut ());
            }
            let (report, sim) = session.finish();
            streamed = sim;
            assert_eq!(report, expected, "day {day}");
        }
    }

    #[test]
    fn report_so_far_tracks_pushes() {
        let s = scenario(9);
        let trace = s.generate_day(0);
        let mut session = EventSession::new(ResolverSim::new(SimConfig::default()), trace.day);
        assert_eq!(session.events_pushed(), 0);
        for event in trace.events.iter().take(100) {
            session.push(event, None, &mut ());
        }
        assert_eq!(session.events_pushed(), 100);
        assert!(session.report_so_far().below_total > 0);
    }
}
