//! Hooks for passive collectors attached to the monitoring point.

use dnsnoise_dns::Record;
use dnsnoise_workload::QueryEvent;

/// How a query was served by the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Served {
    /// Answered from a member cache: traffic appears *below* only.
    CacheHit,
    /// Fetched from the authoritative tier: traffic appears both *above*
    /// and *below*.
    CacheMiss,
    /// NXDOMAIN served from the negative cache: *below* only.
    NegativeHit,
    /// NXDOMAIN fetched upstream: *above* and *below*.
    NxMiss,
}

impl Served {
    /// Whether the query generated traffic above the recursives.
    pub fn went_above(self) -> bool {
        matches!(self, Served::CacheMiss | Served::NxMiss)
    }

    /// Whether the response was NXDOMAIN.
    pub fn is_nxdomain(self) -> bool {
        matches!(self, Served::NegativeHit | Served::NxMiss)
    }
}

/// A passive observer of the monitoring point, invoked once per query with
/// the response's answer section. Passive-DNS collectors and the DNSSEC
/// cost model implement this.
pub trait Observer {
    /// Called after the cluster serves `event` with `answers` (empty for
    /// NXDOMAIN).
    fn observe(&mut self, event: &QueryEvent, served: Served, answers: &[Record]);
}

/// The no-op observer.
impl Observer for () {
    fn observe(&mut self, _event: &QueryEvent, _served: Served, _answers: &[Record]) {}
}

impl<A: Observer, B: Observer> Observer for (&mut A, &mut B) {
    fn observe(&mut self, event: &QueryEvent, served: Served, answers: &[Record]) {
        self.0.observe(event, served, answers);
        self.1.observe(event, served, answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_flags() {
        assert!(Served::CacheMiss.went_above());
        assert!(Served::NxMiss.went_above());
        assert!(!Served::CacheHit.went_above());
        assert!(!Served::NegativeHit.went_above());
        assert!(Served::NxMiss.is_nxdomain());
        assert!(Served::NegativeHit.is_nxdomain());
        assert!(!Served::CacheHit.is_nxdomain());
    }
}
