//! Hooks for passive collectors attached to the monitoring point.

use dnsnoise_dns::Record;
use dnsnoise_workload::QueryEvent;

/// How a query was served by the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Served {
    /// Answered from a member cache: traffic appears *below* only.
    CacheHit,
    /// Fetched from the authoritative tier: traffic appears both *above*
    /// and *below*.
    CacheMiss,
    /// NXDOMAIN served from the negative cache: *below* only.
    NegativeHit,
    /// NXDOMAIN fetched upstream: *above* and *below*.
    NxMiss,
    /// Expired entry served past its TTL because every upstream attempt
    /// failed (RFC 8767 serve-stale): records appear *below* only; the
    /// failed attempts are accounted separately as above traffic.
    StaleHit,
    /// Upstream unreachable and nothing stale to fall back on: a SERVFAIL
    /// went below, carrying no records.
    ServFail,
    /// Admission control shed the query because the member's queue was
    /// full: the client got no response at all. Only produced when an
    /// [`OverloadConfig`](crate::OverloadConfig) is attached to the run.
    Dropped,
    /// Admission control refused the query (token bucket exhausted under
    /// pressure, or NXDOMAIN RRL): the client got REFUSED. Only produced
    /// when an [`OverloadConfig`](crate::OverloadConfig) is attached.
    RateLimited,
}

impl Served {
    /// Whether the query fetched an answer from above the recursives.
    /// Failed upstream *attempts* (retries that never produced an answer)
    /// are counted separately and do not set this.
    pub fn went_above(self) -> bool {
        matches!(self, Served::CacheMiss | Served::NxMiss)
    }

    /// Whether the response was NXDOMAIN.
    pub fn is_nxdomain(self) -> bool {
        matches!(self, Served::NegativeHit | Served::NxMiss)
    }

    /// Whether the client got SERVFAIL instead of an answer.
    pub fn is_failure(self) -> bool {
        matches!(self, Served::ServFail)
    }

    /// Whether admission control shed the query instead of serving it.
    pub fn is_shed(self) -> bool {
        matches!(self, Served::Dropped | Served::RateLimited)
    }
}

/// A passive observer of the monitoring point, invoked once per query with
/// the response's answer section. Passive-DNS collectors and the DNSSEC
/// cost model implement this.
pub trait Observer {
    /// Called after the cluster serves `event` with `answers` (empty for
    /// NXDOMAIN).
    fn observe(&mut self, event: &QueryEvent, served: Served, answers: &[Record]);
}

/// The no-op observer.
impl Observer for () {
    fn observe(&mut self, _event: &QueryEvent, _served: Served, _answers: &[Record]) {}
}

impl<A: Observer, B: Observer> Observer for (&mut A, &mut B) {
    fn observe(&mut self, event: &QueryEvent, served: Served, answers: &[Record]) {
        self.0.observe(event, served, answers);
        self.1.observe(event, served, answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_flags() {
        assert!(Served::CacheMiss.went_above());
        assert!(Served::NxMiss.went_above());
        assert!(!Served::CacheHit.went_above());
        assert!(!Served::NegativeHit.went_above());
        assert!(Served::NxMiss.is_nxdomain());
        assert!(Served::NegativeHit.is_nxdomain());
        assert!(!Served::CacheHit.is_nxdomain());
        // Resilience outcomes stay below: records (or SERVFAIL) reach the
        // client without a successful upstream fetch.
        assert!(!Served::StaleHit.went_above());
        assert!(!Served::ServFail.went_above());
        assert!(!Served::StaleHit.is_nxdomain());
        assert!(Served::ServFail.is_failure());
        assert!(!Served::StaleHit.is_failure());
        // Shed outcomes never reach a cache or the upstream.
        assert!(Served::Dropped.is_shed());
        assert!(Served::RateLimited.is_shed());
        assert!(!Served::Dropped.went_above());
        assert!(!Served::RateLimited.is_failure());
        assert!(!Served::ServFail.is_shed());
    }
}
