//! Per-resource-record statistics: lookup volumes, DHR and CHR.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dnsnoise_dns::RrKey;

/// Query/miss counters for one distinct resource record over one day.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrStat {
    /// Answers containing this record observed below the recursives.
    pub queries: u32,
    /// Answers containing this record observed above the recursives
    /// (cache misses).
    pub misses: u32,
    /// 64-bucket linear-counting sketch of the distinct clients that
    /// queried this record (§IV: disposable names are "queried a few
    /// times by a handful of clients"). Exact for small counts, a
    /// bounded estimate beyond ~40.
    pub client_sketch: u64,
}

impl RrStat {
    /// The paper's domain hit rate (Eq. 1):
    /// `(queries − misses) / queries`, or 0 when no queries were seen.
    pub fn dhr(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            f64::from(self.queries - self.misses) / f64::from(self.queries)
        }
    }

    /// Folds a client id into the sketch.
    pub fn observe_client(&mut self, client: u64) {
        // Full SplitMix64 finaliser: the estimator below assumes uniform
        // bucket assignment, so the hash must scatter sequential ids.
        let mut h = client.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        self.client_sketch |= 1u64 << (h % 64);
    }

    /// Estimated distinct clients (linear counting over 64 buckets):
    /// `n ≈ −64·ln(z/64)` where `z` is the number of empty buckets. Exact
    /// to within collisions for the "handful" range the paper cares
    /// about; saturates around 64·ln 64 ≈ 266.
    pub fn distinct_clients(&self) -> u32 {
        let zeros = self.client_sketch.count_zeros();
        if zeros == 0 {
            return 266; // the sketch's saturation point
        }
        let z = f64::from(zeros) / 64.0;
        (-64.0 * z.ln()).round() as u32
    }
}

/// Per-RR statistics for one day of traffic.
///
/// # Examples
///
/// ```
/// use dnsnoise_resolver::RrDayStats;
/// use dnsnoise_dns::{QType, RData, RrKey};
/// use std::net::Ipv4Addr;
///
/// let mut stats = RrDayStats::new();
/// let key = RrKey {
///     name: "www.example.com".parse()?,
///     qtype: QType::A,
///     rdata: RData::A(Ipv4Addr::new(192, 0, 2, 1)),
/// };
/// stats.record_below(&key);
/// stats.record_below(&key);
/// stats.record_above(&key);
/// assert_eq!(stats.get(&key).unwrap().dhr(), 0.5);
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RrDayStats {
    stats: HashMap<RrKey, RrStat>,
}

impl RrDayStats {
    /// Creates an empty stats table.
    pub fn new() -> Self {
        RrDayStats::default()
    }

    /// Counts one below-the-recursives observation of `key`.
    pub fn record_below(&mut self, key: &RrKey) {
        self.stats.entry(key.clone()).or_default().queries += 1;
    }

    /// Counts one below-the-recursives observation of `key` by `client`,
    /// updating the distinct-client sketch.
    pub fn record_below_by(&mut self, key: &RrKey, client: u64) {
        let stat = self.stats.entry(key.clone()).or_default();
        stat.queries += 1;
        stat.observe_client(client);
    }

    /// Counts one above-the-recursives observation of `key`.
    pub fn record_above(&mut self, key: &RrKey) {
        self.stats.entry(key.clone()).or_default().misses += 1;
    }

    /// The stat for a record, if observed.
    pub fn get(&self, key: &RrKey) -> Option<&RrStat> {
        self.stats.get(key)
    }

    /// Number of distinct records observed.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Returns `true` if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterates over `(record key, stat)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&RrKey, &RrStat)> {
        // lint:allow(hash-iter): documented-unordered view; consumers reduce order-free or sort
        self.stats.iter()
    }

    /// Sorted per-record lookup counts, descending — Fig. 3a's
    /// lookup-volume distribution.
    pub fn lookup_volumes_desc(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.stats.values().map(|s| s.queries).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Fraction of records with fewer than `threshold` lookups — the
    /// paper's long-tail measure (Table I uses `threshold = 10`).
    pub fn tail_fraction(&self, threshold: u32) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        let tail = self.stats.values().filter(|s| s.queries < threshold).count();
        tail as f64 / self.stats.len() as f64
    }

    /// Fraction of records with a domain hit rate of zero (Fig. 3b's tail,
    /// Table II).
    pub fn zero_dhr_fraction(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        let zero = self.stats.values().filter(|s| s.dhr() == 0.0).count();
        zero as f64 / self.stats.len() as f64
    }

    /// The empirical CDF of DHR values evaluated at `points`.
    pub fn dhr_cdf(&self, points: &[f64]) -> Vec<f64> {
        let mut dhrs: Vec<f64> = self.stats.values().map(RrStat::dhr).collect();
        dhrs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("dhr is finite"));
        points
            .iter()
            .map(|&p| {
                let idx = dhrs.partition_point(|&d| d <= p);
                if dhrs.is_empty() {
                    0.0
                } else {
                    idx as f64 / dhrs.len() as f64
                }
            })
            .collect()
    }

    /// The cache-hit-rate distribution of all records (Eq. 2): each
    /// record's DHR value counted once per cache miss.
    pub fn chr_distribution(&self) -> ChrDistribution {
        // lint:allow(hash-iter): histogram binning; integer bin counts are order-independent
        ChrDistribution::from_stats(self.stats.values())
    }

    /// Merges another day's stats into this table (used by multi-day
    /// aggregates like Fig. 4b).
    pub fn merge(&mut self, other: &RrDayStats) {
        // lint:allow(hash-iter): entry-wise integer sums and bitwise-or; order cannot matter
        for (k, s) in &other.stats {
            let e = self.stats.entry(k.clone()).or_default();
            e.queries += s.queries;
            e.misses += s.misses;
            e.client_sketch |= s.client_sketch;
        }
    }
}

/// A weighted multiset of cache-hit-rate values (the paper's "cache hit
/// rate distribution", §III-C2): value `dhr` with multiplicity equal to
/// the record's miss count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChrDistribution {
    /// `(chr value, weight)` pairs sorted by value.
    entries: Vec<(f64, u64)>,
    total_weight: u64,
}

impl ChrDistribution {
    /// Builds the distribution from per-RR stats.
    pub fn from_stats<'a, I>(stats: I) -> Self
    where
        I: IntoIterator<Item = &'a RrStat>,
    {
        let mut entries: Vec<(f64, u64)> = stats
            .into_iter()
            .filter(|s| s.misses > 0)
            .map(|s| (s.dhr(), u64::from(s.misses)))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("chr is finite"));
        let total_weight = entries.iter().map(|(_, w)| w).sum();
        ChrDistribution { entries, total_weight }
    }

    /// Builds a distribution directly from `(chr, weight)` samples.
    pub fn from_samples(mut samples: Vec<(f64, u64)>) -> Self {
        samples.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("chr is finite"));
        let total_weight = samples.iter().map(|(_, w)| w).sum();
        ChrDistribution { entries: samples, total_weight }
    }

    /// Total weight (number of cache misses represented).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Returns `true` if the distribution carries no weight.
    pub fn is_empty(&self) -> bool {
        self.total_weight == 0
    }

    /// The weighted CDF at `x`: fraction of CHR values ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for &(v, w) in &self.entries {
            if v <= x {
                acc += w;
            } else {
                break;
            }
        }
        acc as f64 / self.total_weight as f64
    }

    /// The weighted median CHR (0 when empty) — one of the paper's two
    /// cache-hit-rate classifier features.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The weighted `q`-quantile, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total_weight as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(v, w) in &self.entries {
            acc += w;
            if acc >= target {
                return v;
            }
        }
        self.entries.last().map_or(0.0, |&(v, _)| v)
    }

    /// Fraction of weight at CHR exactly zero — the paper's other
    /// cache-hit-rate feature ("90% of cache hit rates from disposable RRs
    /// are zero", Fig. 7).
    pub fn zero_fraction(&self) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let zero: u64 = self.entries.iter().take_while(|&&(v, _)| v == 0.0).map(|(_, w)| w).sum();
        zero as f64 / self.total_weight as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_dns::{QType, RData};
    use std::net::Ipv4Addr;

    fn key(i: u8) -> RrKey {
        RrKey {
            name: format!("d{i}.example.com").parse().unwrap(),
            qtype: QType::A,
            rdata: RData::A(Ipv4Addr::new(192, 0, 2, i)),
        }
    }

    #[test]
    fn dhr_matches_paper_example() {
        // §III-C2: an object with 2 misses and 5 total queries has CHR 0.6
        // for both misses.
        let mut s = RrDayStats::new();
        for _ in 0..5 {
            s.record_below(&key(1));
        }
        for _ in 0..2 {
            s.record_above(&key(1));
        }
        let stat = s.get(&key(1)).unwrap();
        assert!((stat.dhr() - 0.6).abs() < 1e-12);
        let chr = s.chr_distribution();
        assert_eq!(chr.total_weight(), 2);
        assert!((chr.median() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tail_and_zero_dhr_fractions() {
        let mut s = RrDayStats::new();
        // Record 1: queried once, missed once (DHR 0, tail).
        s.record_below(&key(1));
        s.record_above(&key(1));
        // Record 2: 20 queries, 1 miss (DHR 0.95, not tail).
        for _ in 0..20 {
            s.record_below(&key(2));
        }
        s.record_above(&key(2));
        assert_eq!(s.tail_fraction(10), 0.5);
        assert_eq!(s.zero_dhr_fraction(), 0.5);
    }

    #[test]
    fn lookup_volumes_sorted_descending() {
        let mut s = RrDayStats::new();
        for _ in 0..3 {
            s.record_below(&key(1));
        }
        s.record_below(&key(2));
        assert_eq!(s.lookup_volumes_desc(), vec![3, 1]);
    }

    #[test]
    fn chr_distribution_weights_by_misses() {
        let chr = ChrDistribution::from_samples(vec![(0.0, 9), (1.0, 1)]);
        assert_eq!(chr.zero_fraction(), 0.9);
        assert_eq!(chr.median(), 0.0);
        assert!((chr.cdf(0.5) - 0.9).abs() < 1e-12);
        assert!((chr.cdf(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(chr.quantile(0.95), 1.0);
    }

    #[test]
    fn empty_distribution_is_benign() {
        let chr = ChrDistribution::from_samples(vec![]);
        assert!(chr.is_empty());
        assert_eq!(chr.median(), 0.0);
        assert_eq!(chr.zero_fraction(), 0.0);
        assert_eq!(chr.cdf(0.7), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RrDayStats::new();
        a.record_below(&key(1));
        let mut b = RrDayStats::new();
        b.record_below(&key(1));
        b.record_above(&key(1));
        b.record_below(&key(2));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(&key(1)).unwrap().queries, 2);
        assert_eq!(a.get(&key(1)).unwrap().misses, 1);
    }

    #[test]
    fn client_sketch_counts_small_sets_exactly() {
        let mut stat = RrStat::default();
        assert_eq!(stat.distinct_clients(), 0);
        for c in 0..3u64 {
            stat.observe_client(c);
            stat.observe_client(c); // repeats are free
        }
        assert_eq!(stat.distinct_clients(), 3);
    }

    #[test]
    fn client_sketch_estimates_and_saturates() {
        let mut stat = RrStat::default();
        for c in 0..40u64 {
            stat.observe_client(c * 7919);
        }
        let est = stat.distinct_clients();
        assert!((25..=70).contains(&est), "estimate {est} for 40 clients");
        for c in 0..100_000u64 {
            stat.observe_client(c);
        }
        assert_eq!(stat.distinct_clients(), 266, "sketch saturates");
    }

    #[test]
    fn record_below_by_tracks_clients() {
        let mut s = RrDayStats::new();
        s.record_below_by(&key(1), 10);
        s.record_below_by(&key(1), 11);
        s.record_below_by(&key(1), 10);
        let stat = s.get(&key(1)).unwrap();
        assert_eq!(stat.queries, 3);
        assert_eq!(stat.distinct_clients(), 2);
    }

    #[test]
    fn merge_unions_client_sketches() {
        let mut a = RrDayStats::new();
        a.record_below_by(&key(1), 1);
        let mut b = RrDayStats::new();
        b.record_below_by(&key(1), 2);
        a.merge(&b);
        assert_eq!(a.get(&key(1)).unwrap().distinct_clients(), 2);
    }

    #[test]
    fn records_with_no_misses_carry_no_chr_weight() {
        let mut s = RrDayStats::new();
        s.record_below(&key(1)); // hit-only record (e.g. cached from yesterday)
        let chr = s.chr_distribution();
        assert!(chr.is_empty());
    }
}
