//! Recursive-resolver cluster simulation.
//!
//! This crate replays a synthetic day of client queries (from
//! `dnsnoise-workload`) through a cache cluster (from `dnsnoise-cache`) and
//! records exactly what the paper's monitoring point records (§III-A):
//!
//! * **below** the recursives — every answer returned to a client;
//! * **above** the recursives — every answer fetched from the
//!   authoritative tier (i.e. every cache miss);
//! * per-resource-record query/miss counts, from which the paper's domain
//!   hit rate (DHR, Eq. 1) and cache hit rate (CHR, Eq. 2) are computed;
//! * hourly traffic volumes split into the Fig. 2 series (All / NXDOMAIN /
//!   Akamai / Google).
//!
//! Runs are configured through the [`ResolverSim::day`] builder; the
//! observability layer ([`MetricsRegistry`], [`TimelineRecorder`]) hangs
//! off the same builder and stays bit-identical across thread counts.
//!
//! # Examples
//!
//! ```
//! use dnsnoise_resolver::{ResolverSim, SimConfig};
//! use dnsnoise_workload::{Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.0).with_scale(0.02), 7);
//! let trace = scenario.generate_day(0);
//! let mut sim = ResolverSim::new(SimConfig::default());
//! let report = sim.day(&trace).ground_truth(scenario.ground_truth()).run();
//! assert!(report.below_total > 0);
//! assert!(report.above_total <= report.below_total);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod builder;
mod collector;
mod engine;
mod faults;
mod metrics;
mod observer;
mod session;
mod sim;
mod stats;
mod traffic;

pub use admission::{AdmissionState, OverloadConfig, OverloadStats};
pub use builder::DayRun;
pub use collector::PdnsCollector;
pub use engine::ShardObserver;
pub use faults::{
    FaultKind, FaultPlan, FaultSpecError, MemberOutage, OutageScope, OutageWindow, RetryPolicy,
    SERVFAIL_LATENCY_MS, UPSTREAM_RTT_MS,
};
pub use metrics::{
    served_index, Histogram, MetricsRegistry, PhaseTimings, QueryClass, QueryCounters, TimeSlot,
    TimelineRecorder, ATTEMPT_BOUNDS, BASELINE_SERVED_KINDS, DEFAULT_TIMELINE_BUCKETS,
    LATENCY_BOUNDS_MS, QUEUE_BOUNDS, RETRY_BOUNDS, SERVED_KINDS, SERVED_LABELS,
};
pub use observer::{Observer, Served};
pub use session::EventSession;
pub use sim::{
    Availability, DayReport, PriorityPredicate, ResilienceStats, ResolverSim, SimConfig,
};
pub use stats::{ChrDistribution, RrDayStats, RrStat};
pub use traffic::{Series, TrafficProfile};
