//! Shape test: the above/below traffic asymmetry (paper Fig. 2) emerges as
//! query density (responses per unique name) approaches the paper's.

use dnsnoise_resolver::{ResolverSim, SimConfig};
use dnsnoise_workload::{Scenario, ScenarioConfig};

fn run(scale: f64, epu: f64, members: usize) -> (u64, u64, f64, f64) {
    let s = Scenario::new(
        ScenarioConfig::paper_epoch(0.5).with_scale(scale).with_events_per_unique(epu),
        3,
    );
    let mut sim = ResolverSim::new(SimConfig { members, ..SimConfig::default() });
    let r = sim.run_day(&s.generate_day(0), Some(s.ground_truth()), &mut ());
    (
        r.below_total,
        r.above_total,
        r.nx_above as f64 / r.above_total as f64,
        r.nx_below as f64 / r.below_total as f64,
    )
}

#[test]
fn caching_gap_grows_with_query_density() {
    let (b1, a1, _, _) = run(0.05, 40.0, 2);
    let (b2, a2, _, _) = run(0.05, 800.0, 2);
    let r1 = b1 as f64 / a1 as f64;
    let r2 = b2 as f64 / a2 as f64;
    assert!(r2 > r1 * 1.5, "density 800 ratio {r2:.2} vs density 40 ratio {r1:.2}");
    assert!(r2 > 3.5, "expected a wide above/below gap, got {r2:.2}");
}

#[test]
fn nxdomain_share_is_asymmetric() {
    // Fig. 2: NXDOMAIN ≈ 40% of above-traffic, ≈ 6% below.
    let (_, _, nx_above, nx_below) = run(0.05, 800.0, 2);
    assert!(nx_below < 0.12, "nx below share {nx_below:.3}");
    assert!(nx_above > 3.0 * nx_below, "nx above {nx_above:.3} vs below {nx_below:.3}");
}
