//! Property-based invariants of the cluster simulation.

use dnsnoise_cache::LoadBalance;
use dnsnoise_dns::{Timestamp, Ttl};
use dnsnoise_resolver::{
    FaultKind, FaultPlan, OutageScope, OverloadConfig, ResolverSim, SimConfig,
};
use dnsnoise_workload::{AttackPlan, Scenario, ScenarioConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..5,
        50usize..5_000,
        prop_oneof![
            Just(LoadBalance::HashClient),
            Just(LoadBalance::RoundRobin),
            Just(LoadBalance::HashName)
        ],
    )
        .prop_map(|(members, capacity_each, load_balance)| SimConfig {
            members,
            capacity_each,
            load_balance,
            ..SimConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Accounting conservation for any cluster configuration:
    /// * every below record is either a hit or a miss (above);
    /// * the per-RR statistics sum exactly to the traffic totals;
    /// * DHR stays in [0, 1] for every record.
    #[test]
    fn accounting_is_conserved(config in arb_config(), seed in 0u64..500, epoch in 0.0f64..=1.0) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(epoch).with_scale(0.01), seed);
        let trace = scenario.generate_day(0);
        let mut sim = ResolverSim::new(config);
        let report = sim.run_day(&trace, Some(scenario.ground_truth()), &mut ());

        prop_assert!(report.above_total <= report.below_total);
        prop_assert!(report.nx_above <= report.nx_below);

        let sum_queries: u64 = report.rr_stats.iter().map(|(_, s)| u64::from(s.queries)).sum();
        let sum_misses: u64 = report.rr_stats.iter().map(|(_, s)| u64::from(s.misses)).sum();
        prop_assert_eq!(sum_queries, report.below_total - report.nx_below);
        prop_assert_eq!(sum_misses, report.above_total - report.nx_above);

        for (key, stat) in report.rr_stats.iter() {
            prop_assert!(stat.misses <= stat.queries, "{}: {stat:?}", key);
            let dhr = stat.dhr();
            prop_assert!((0.0..=1.0).contains(&dhr));
        }

        // Traffic-profile totals agree with the scalar counters.
        use dnsnoise_resolver::Series;
        prop_assert_eq!(report.traffic.below_total(Series::All), report.below_total);
        prop_assert_eq!(report.traffic.above_total(Series::All), report.above_total);
        prop_assert_eq!(report.traffic.below_total(Series::NxDomain), report.nx_below);
    }

    /// A cache with more capacity never produces more upstream traffic on
    /// the identical trace (LRU is not anomalous under capacity growth for
    /// a fixed request order per member).
    #[test]
    fn bigger_cache_never_fetches_more(seed in 0u64..200) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.5).with_scale(0.01), seed);
        let trace = scenario.generate_day(0);
        let mut small_sim = ResolverSim::new(SimConfig { members: 2, capacity_each: 60, ..SimConfig::default() });
        let small = small_sim.run_day(&trace, None, &mut ());
        let mut large_sim = ResolverSim::new(SimConfig { members: 2, capacity_each: 50_000, ..SimConfig::default() });
        let large = large_sim.run_day(&trace, None, &mut ());
        prop_assert!(large.above_total <= small.above_total,
            "large {} vs small {}", large.above_total, small.above_total);
    }

    /// The extended conservation law under arbitrary fault plans:
    /// * per-RR query counts equal the below records minus NXDOMAIN and
    ///   SERVFAIL responses (which carry no records);
    /// * per-RR miss counts equal the above fetches minus NXDOMAIN fetches
    ///   and failed attempts (retries are above-only traffic);
    /// * hourly traffic series still sum to the scalar totals;
    /// * every trace event lands in exactly one availability bucket.
    #[test]
    fn fault_accounting_is_conserved(
        seed in 0u64..200,
        fault_seed in 0u64..1_000,
        loss in 0.0f64..0.5,
        outage_start_h in 0u64..20,
        outage_len_h in 1u64..8,
        timeout in prop_oneof![Just(FaultKind::Timeout), Just(FaultKind::ServFail)],
        stale in prop_oneof![Just(None), Just(Some(Ttl::from_secs(86_400)))],
        member_fault in any::<bool>(),
    ) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.5).with_scale(0.01), seed);
        let trace = scenario.generate_day(0);
        let mut plan = FaultPlan::default()
            .with_seed(fault_seed)
            .with_packet_loss(loss)
            .with_outage(
                OutageScope::All,
                timeout,
                Timestamp::from_secs(outage_start_h * 3_600),
                Timestamp::from_secs((outage_start_h + outage_len_h) * 3_600),
            );
        if member_fault {
            plan = plan.with_member_outage(
                0,
                Timestamp::from_secs(2 * 3_600),
                Timestamp::from_secs(10 * 3_600),
            );
        }
        let mut config = SimConfig { members: 2, ..SimConfig::default() };
        if let Some(w) = stale {
            config = config.with_serve_stale(w);
        }
        let mut sim = ResolverSim::new(config);
        let report = sim.run_day_with_faults(&trace, Some(scenario.ground_truth()), &mut (), &plan);

        let r = &report.resilience;
        let sum_queries: u64 = report.rr_stats.iter().map(|(_, s)| u64::from(s.queries)).sum();
        let sum_misses: u64 = report.rr_stats.iter().map(|(_, s)| u64::from(s.misses)).sum();
        prop_assert_eq!(sum_queries, report.below_total - report.nx_below - r.servfails_below);
        prop_assert_eq!(sum_misses, report.above_total - report.nx_above - r.failed_attempts);

        use dnsnoise_resolver::Series;
        prop_assert_eq!(report.traffic.below_total(Series::All), report.below_total);
        prop_assert_eq!(report.traffic.above_total(Series::All), report.above_total);

        let events = trace.events.len() as u64;
        let tallied = r.disposable.answered + r.disposable.failed
            + r.nondisposable.answered + r.nondisposable.failed;
        prop_assert_eq!(tallied, events, "every event lands in one availability bucket");
        prop_assert_eq!(r.overall().failed, r.servfails_below);
        prop_assert!(r.timeouts + r.upstream_servfails == r.failed_attempts);
    }

    /// Merge conservation: replaying a day on the sharded engine with an
    /// arbitrary shard count (arbitrary splits of members over workers)
    /// yields a merged report that is bit-identical to the reference and
    /// therefore satisfies every conservation invariant above. Checked
    /// under a fault plan so the resilience counters merge too.
    #[test]
    fn sharded_merge_conserves_accounting(
        config in arb_config(),
        seed in 0u64..200,
        fault_seed in 0u64..1_000,
        loss in 0.0f64..0.4,
        threads in 1usize..9,
        member_fault in any::<bool>(),
    ) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.5).with_scale(0.01), seed);
        let trace = scenario.generate_day(0);
        let mut plan = FaultPlan::default().with_seed(fault_seed).with_packet_loss(loss);
        // A member outage needs a survivor to fail over to: crashing the
        // only member of a 1-member cluster is a (documented) panic, not
        // a resilience scenario.
        if member_fault && config.members > 1 {
            plan = plan.with_member_outage(
                0,
                Timestamp::from_secs(4 * 3_600),
                Timestamp::from_secs(11 * 3_600),
            );
        }

        let mut reference = ResolverSim::new(config.clone());
        let expected =
            reference.run_day_with_faults(&trace, Some(scenario.ground_truth()), &mut (), &plan);
        let mut sim = ResolverSim::new(config);
        let report =
            sim.run_day_sharded(&trace, Some(scenario.ground_truth()), &mut (), &plan, threads);
        prop_assert_eq!(&report, &expected, "sharded replay must be bit-identical");

        // The merged per-shard partials must still satisfy the
        // conservation laws — not just equality with the reference.
        let r = &report.resilience;
        let sum_queries: u64 = report.rr_stats.iter().map(|(_, s)| u64::from(s.queries)).sum();
        let sum_misses: u64 = report.rr_stats.iter().map(|(_, s)| u64::from(s.misses)).sum();
        prop_assert_eq!(sum_queries, report.below_total - report.nx_below - r.servfails_below);
        prop_assert_eq!(sum_misses, report.above_total - report.nx_above - r.failed_attempts);
        use dnsnoise_resolver::Series;
        prop_assert_eq!(report.traffic.below_total(Series::All), report.below_total);
        prop_assert_eq!(report.traffic.above_total(Series::All), report.above_total);
        if !plan.is_empty() {
            let events = trace.events.len() as u64;
            let tallied = r.disposable.answered + r.disposable.failed
                + r.nondisposable.answered + r.nondisposable.failed;
            prop_assert_eq!(tallied, events);
        }
        prop_assert_eq!(r.timeouts + r.upstream_servfails, r.failed_attempts);
    }

    /// `DayReport::merge` is associative: folding the same partial
    /// reports under any grouping — i.e. any split of the event stream
    /// over shards, merged in any tree shape — yields the same report.
    /// The partials are real single-day reports (different seeds and
    /// epochs) so every constituent (rr stats, traffic, cache counters,
    /// resilience slices) is populated.
    #[test]
    fn merge_is_associative_over_arbitrary_shard_splits(
        seed in 0u64..100,
        epochs in proptest::collection::vec(0.0f64..=1.0, 3..4),
        loss in 0.0f64..0.3,
    ) {
        let plan = FaultPlan::default().with_seed(seed).with_packet_loss(loss);
        let partials: Vec<_> = epochs
            .iter()
            .enumerate()
            .map(|(i, &epoch)| {
                let s = Scenario::new(
                    ScenarioConfig::paper_epoch(epoch).with_scale(0.005),
                    seed + i as u64,
                );
                let mut sim = ResolverSim::new(SimConfig::default());
                sim.run_day_with_faults(&s.generate_day(0), Some(s.ground_truth()), &mut (), &plan)
            })
            .collect();
        let (a, b, c) = (&partials[0], &partials[1], &partials[2]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        // The canonical fold the engine uses agrees with both groupings,
        // and merging an empty (identity) report is a no-op.
        let folded = dnsnoise_resolver::DayReport::merge_partials(a.day, &partials);
        prop_assert_eq!(&folded, &left);
        let mut with_identity = left.clone();
        with_identity.merge(&dnsnoise_resolver::DayReport::default());
        prop_assert_eq!(&with_identity, &left);
    }

    /// Query accounting under admission control: every offered query is
    /// either admitted or shed (`offered = admitted + dropped +
    /// rate_limited`), the shed split by ground truth covers the shed
    /// total, and every trace event still lands in exactly one
    /// availability bucket (`answered + failed + shed = events`) — for
    /// any flood intensity, queue depth, RRL setting, and thread count.
    #[test]
    fn overload_accounting_is_conserved(
        seed in 0u64..100,
        attack_seed in 0u64..500,
        clients in 1u64..400,
        mult in 2u64..40,
        depth in 4u64..64,
        rrl in any::<bool>(),
        threads in 1usize..5,
    ) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.5).with_scale(0.005), seed);
        let mut trace = scenario.generate_day(0);
        let spec = format!(
            "seed={attack_seed}; victim=flood-target.example; clients={clients}; \
             surge=21600,43200,{mult}"
        );
        let attack: AttackPlan = spec.parse().expect("generated attack spec");
        attack.inject(&mut trace);
        let events = trace.events.len() as u64;

        // Tiny simulated capacity: the 0.005-scale day idles around
        // 0.06 qps, so a unit service rate is what lets the larger surge
        // multipliers actually overrun the queue.
        let mut cfg =
            OverloadConfig::default().with_queue_depth(depth).with_service_rate(1);
        if rrl {
            cfg = cfg.with_rrl(1);
        }
        let mut sim = ResolverSim::new(SimConfig::default());
        let report = sim
            .day(&trace)
            .ground_truth(scenario.ground_truth())
            .overload(&cfg)
            .threads(threads)
            .run();

        let o = &report.overload;
        prop_assert_eq!(o.offered, events, "every event is offered exactly once");
        prop_assert_eq!(o.admitted + o.dropped + o.rate_limited, o.offered);
        prop_assert_eq!(o.shed(), o.dropped + o.rate_limited);
        prop_assert_eq!(o.shed_attack + o.shed_legit, o.shed());
        prop_assert!(o.queue_peak <= depth, "backlog never exceeds the configured depth");

        let r = &report.resilience;
        let tallied = r.disposable.answered + r.disposable.failed + r.disposable.shed
            + r.nondisposable.answered + r.nondisposable.failed + r.nondisposable.shed;
        prop_assert_eq!(tallied, events, "every event lands in one availability bucket");
        prop_assert_eq!(r.overall().shed, o.shed());
        prop_assert_eq!(r.stale_serves, o.stale_under_pressure,
            "faultless run: every stale serve is an under-pressure serve");

        // Shed queries deliver nothing: records below never exceed the
        // fault-free baseline, and the traffic series still reconcile.
        use dnsnoise_resolver::Series;
        prop_assert_eq!(report.traffic.below_total(Series::All), report.below_total);
        prop_assert_eq!(report.traffic.above_total(Series::All), report.above_total);
    }

    /// Fault specs round-trip: parse → render → parse is the identity
    /// for any clause combination (scoped outages, member crash windows,
    /// retry overrides), mirroring the attack-spec property on the
    /// workload side.
    #[test]
    fn fault_specs_round_trip(
        seed in any::<u64>(),
        loss_milli in 0u64..1_000,
        outages in proptest::collection::vec(
            (0usize..3, 0u64..10_000, any::<bool>(), 0u64..80_000, 1u64..6_000),
            0..4,
        ),
        members in proptest::collection::vec((0u64..6, 0u64..80_000, 1u64..6_000), 0..3),
        retries in 0u64..8,
        budget in 100u64..20_000,
    ) {
        let loss = loss_milli as f64 / 1_000.0;
        let mut spec = format!("seed={seed}; loss={loss}; retries={retries}; budget={budget}");
        for &(scope_kind, name, servfail, start, len) in &outages {
            let scope = match scope_kind {
                0 => "all".to_string(),
                1 if name % 2 == 0 => "op:google".to_string(),
                1 => "op:akamai".to_string(),
                _ => format!("zone:zone{name}.example"),
            };
            let kind = if servfail { "servfail" } else { "timeout" };
            spec.push_str(&format!("; outage={scope},{kind},{start},{}", start + len));
        }
        for &(m, start, len) in &members {
            spec.push_str(&format!("; member={m},{start},{}", start + len));
        }

        let plan: FaultPlan = spec.parse().expect("generated spec parses");
        let rendered = plan.to_string();
        let back: FaultPlan = rendered.parse().expect("rendered spec parses");
        prop_assert_eq!(&back, &plan, "parse(render(p)) == p");
        prop_assert_eq!(back.to_string(), rendered, "render is stable");
    }

    /// Replaying the identical trace twice through one warm simulator
    /// strictly increases hits (the cache was seeded by the first pass).
    #[test]
    fn warm_cache_improves_second_pass(seed in 0u64..200) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.5).with_scale(0.01), seed);
        let trace = scenario.generate_day(0);
        let mut sim = ResolverSim::new(SimConfig::default());
        let first = sim.run_day(&trace, None, &mut ());
        let second = sim.run_day(&trace, None, &mut ());
        prop_assert!(second.above_total <= first.above_total,
            "second {} vs first {}", second.above_total, first.above_total);
    }
}
