//! The reduced passive DNS (rpDNS) dataset: deduplicated resource records.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dnsnoise_dns::{Record, RrKey};

/// Per-day new-record accounting (Fig. 5 / Fig. 15's unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailyNewRrs {
    /// Distinct records first seen this day.
    pub new_records: u64,
    /// Records observed this day that were already known.
    pub repeated_records: u64,
}

/// The rpDNS store: "the distinct (no duplicates) resource records from
/// all successful DNS resolutions", each with the first date the tuple was
/// seen (§III-A).
///
/// # Examples
///
/// ```
/// use dnsnoise_pdns::RpDns;
/// use dnsnoise_dns::{QType, RData, Record, Ttl};
/// use std::net::Ipv4Addr;
///
/// let mut store = RpDns::new();
/// let rr = Record::new(
///     "www.example.com".parse()?,
///     QType::A,
///     Ttl::from_secs(60),
///     RData::A(Ipv4Addr::new(192, 0, 2, 1)),
/// );
/// assert!(store.observe(&rr, 0));  // new on day 0
/// assert!(!store.observe(&rr, 3)); // already known on day 3
/// assert_eq!(store.first_seen(&rr.key()), Some(0));
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RpDns {
    records: HashMap<RrKey, u64>,
    per_day: Vec<DailyNewRrs>,
    storage_bytes: u64,
}

impl RpDns {
    /// Creates an empty store.
    pub fn new() -> Self {
        RpDns::default()
    }

    /// Observes one successfully-resolved record on `day`; returns `true`
    /// if it is new to the store. TTL is not part of the identity
    /// (§III-A's tuple is name/type/RDATA/first-seen).
    pub fn observe(&mut self, record: &Record, day: u64) -> bool {
        let d = day as usize;
        if self.per_day.len() <= d {
            self.per_day.resize(d + 1, DailyNewRrs::default());
        }
        let key = record.key();
        if self.records.contains_key(&key) {
            self.per_day[d].repeated_records += 1;
            return false;
        }
        self.storage_bytes += record.storage_bytes() as u64;
        self.records.insert(key, day);
        self.per_day[d].new_records += 1;
        true
    }

    /// Rebuilds a store from checkpointed parts: the `(key, first-seen
    /// day)` map entries, the per-day counters, and the modelled storage
    /// footprint. The inverse of draining [`RpDns::iter`] /
    /// [`RpDns::per_day`] / [`RpDns::storage_bytes`]; duplicate keys keep
    /// the earliest day.
    pub fn from_parts(
        entries: Vec<(RrKey, u64)>,
        per_day: Vec<DailyNewRrs>,
        storage_bytes: u64,
    ) -> RpDns {
        let mut map: HashMap<RrKey, u64> = HashMap::with_capacity(entries.len());
        for (key, day) in entries {
            match map.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(day);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if day < *e.get() {
                        e.insert(day);
                    }
                }
            }
        }
        RpDns { records: map, per_day, storage_bytes }
    }

    /// Folds another store into this one, as if every observation behind
    /// `other` had been made against `self`.
    ///
    /// Distinct records add up; a record known to both keeps its earliest
    /// first-seen day, and the redundant "new" observation on the later
    /// day is reclassified as repeated (with its storage contribution
    /// dropped), so daily new/repeated totals and the storage footprint
    /// match a single merged collection exactly. When both days are
    /// equal — per-shard stores of the same simulated day — the result is
    /// bit-identical to single-threaded collection.
    pub fn merge(&mut self, other: RpDns) {
        if self.per_day.len() < other.per_day.len() {
            self.per_day.resize(other.per_day.len(), DailyNewRrs::default());
        }
        for (slot, theirs) in self.per_day.iter_mut().zip(&other.per_day) {
            slot.new_records += theirs.new_records;
            slot.repeated_records += theirs.repeated_records;
        }
        self.storage_bytes += other.storage_bytes;
        // lint:allow(hash-iter): entry-wise union; the merged map is the same whatever the order
        for (key, day) in other.records {
            match self.records.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(day);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let dup_day = (*e.get()).max(day);
                    if day < *e.get() {
                        e.insert(day);
                    }
                    self.storage_bytes -= e.key().storage_bytes() as u64;
                    let d = &mut self.per_day[dup_day as usize];
                    d.new_records -= 1;
                    d.repeated_records += 1;
                }
            }
        }
    }

    /// Number of distinct records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The day a record was first seen.
    pub fn first_seen(&self, key: &RrKey) -> Option<u64> {
        self.records.get(key).copied()
    }

    /// The daily new/repeated counters (index = day).
    pub fn per_day(&self) -> &[DailyNewRrs] {
        &self.per_day
    }

    /// New records on `day` (0 for days never observed).
    pub fn new_on_day(&self, day: u64) -> u64 {
        self.per_day.get(day as usize).map_or(0, |d| d.new_records)
    }

    /// Modelled storage footprint in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bytes
    }

    /// Iterates `(record key, first-seen day)`.
    pub fn iter(&self) -> impl Iterator<Item = (&RrKey, u64)> {
        // lint:allow(hash-iter): documented-unordered view; consumers reduce order-free or sort
        self.records.iter().map(|(k, &d)| (k, d))
    }

    /// Counts stored records matching a predicate (e.g. "disposable" per
    /// ground truth) — the paper's "88% of all unique resource records in
    /// the database are disposable" measure (§VI-C).
    pub fn count_matching<F>(&self, mut predicate: F) -> usize
    where
        F: FnMut(&RrKey) -> bool,
    {
        self.records.keys().filter(|k| predicate(k)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_dns::{QType, RData, Ttl};
    use std::net::Ipv4Addr;

    fn rr(name: &str, ip: u8) -> Record {
        Record::new(
            name.parse().unwrap(),
            QType::A,
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, ip)),
        )
    }

    #[test]
    fn dedup_ignores_ttl() {
        let mut store = RpDns::new();
        let mut a = rr("x.com", 1);
        assert!(store.observe(&a, 0));
        a.ttl = Ttl::from_secs(999);
        assert!(!store.observe(&a, 1), "same key, different TTL");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_rdata_is_distinct_record() {
        let mut store = RpDns::new();
        assert!(store.observe(&rr("x.com", 1), 0));
        assert!(store.observe(&rr("x.com", 2), 0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.new_on_day(0), 2);
    }

    #[test]
    fn per_day_accounting() {
        let mut store = RpDns::new();
        store.observe(&rr("a.com", 1), 0);
        store.observe(&rr("a.com", 1), 0);
        store.observe(&rr("b.com", 1), 2);
        assert_eq!(store.per_day().len(), 3);
        assert_eq!(store.per_day()[0], DailyNewRrs { new_records: 1, repeated_records: 1 });
        assert_eq!(store.per_day()[1], DailyNewRrs::default());
        assert_eq!(store.new_on_day(2), 1);
        assert_eq!(store.new_on_day(99), 0);
    }

    #[test]
    fn first_seen_is_stable() {
        let mut store = RpDns::new();
        let r = rr("x.com", 1);
        store.observe(&r, 3);
        store.observe(&r, 7);
        assert_eq!(store.first_seen(&r.key()), Some(3));
    }

    #[test]
    fn count_matching_filters() {
        let mut store = RpDns::new();
        store.observe(&rr("a.tracker.com", 1), 0);
        store.observe(&rr("www.site.com", 1), 0);
        let trackers = store.count_matching(|k| k.name.to_string().ends_with("tracker.com"));
        assert_eq!(trackers, 1);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        // Observing a stream through two shard-split stores then merging
        // must equal observing the whole stream through one store.
        let stream = [
            (rr("a.com", 1), 0u64),
            (rr("b.com", 1), 0),
            (rr("a.com", 1), 0),
            (rr("c.com", 1), 1),
            (rr("b.com", 1), 1),
            (rr("b.com", 2), 2),
        ];
        let mut whole = RpDns::new();
        let mut left = RpDns::new();
        let mut right = RpDns::new();
        for (i, (record, day)) in stream.iter().enumerate() {
            whole.observe(record, *day);
            if i % 2 == 0 { &mut left } else { &mut right }.observe(record, *day);
        }
        left.merge(right);
        assert_eq!(left.len(), whole.len());
        assert_eq!(left.per_day(), whole.per_day());
        assert_eq!(left.storage_bytes(), whole.storage_bytes());
        for (key, day) in whole.iter() {
            assert_eq!(left.first_seen(key), Some(day));
        }
    }

    #[test]
    fn merge_keeps_earliest_first_seen_across_days() {
        let mut early = RpDns::new();
        let mut late = RpDns::new();
        let r = rr("x.com", 1);
        late.observe(&r, 5);
        early.observe(&r, 2);
        let bytes_one = early.storage_bytes();
        early.merge(late);
        assert_eq!(early.first_seen(&r.key()), Some(2));
        assert_eq!(early.storage_bytes(), bytes_one, "duplicate costs nothing");
        // The day-5 "new" observation is reclassified as repeated.
        assert_eq!(early.new_on_day(5), 0);
        assert_eq!(early.per_day()[5].repeated_records, 1);
    }

    #[test]
    fn storage_bytes_accumulate_once_per_unique() {
        let mut store = RpDns::new();
        let r = rr("x.com", 1);
        store.observe(&r, 0);
        let bytes = store.storage_bytes();
        store.observe(&r, 1);
        assert_eq!(store.storage_bytes(), bytes, "duplicates cost nothing");
    }
}
