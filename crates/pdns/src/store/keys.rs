//! Canonical byte encoding of rpDNS keys for the run store.
//!
//! The composite sort key is the tuple `(name, qtype, rdata)` with each
//! component encoded so plain lexicographic byte order gives the order
//! the engine needs:
//!
//! * **name** — labels in *reverse* order (TLD first), each label's
//!   lowercase bytes followed by a `0x00` separator. Labels are printable
//!   ASCII (`0x21..=0x7e`, no `.`), so the separator can never collide
//!   with label bytes, and a zone's entire subtree — the zone apex and
//!   every descendant — is exactly the contiguous range of encodings
//!   starting with the zone's own encoding.
//! * **qtype** — the 16-bit RR type code, compared numerically.
//! * **rdata** — a one-byte variant tag followed by a fixed payload
//!   layout per variant; the order is arbitrary but total and
//!   deterministic, which is all deduplication and canonical output
//!   order require.
//!
//! Every encoding round-trips losslessly (names are case-normalised at
//! construction, so re-encoding a decoded key is byte-identical).

use std::net::{Ipv4Addr, Ipv6Addr};

use dnsnoise_dns::{Label, Name, QType, RData, RrKey};

/// The composite key the memtable sorts on. Rust's derived tuple `Ord`
/// is component-lexicographic, which matches the run layout's
/// `(name column, qtype column, rdata column)` comparison exactly.
pub type CompositeKey = (Vec<u8>, u16, Vec<u8>);

/// Encodes an owner name in reverse-label order with `0x00` separators.
pub fn encode_name(name: &Name) -> Vec<u8> {
    let mut out = Vec::with_capacity(name.presentation_len() + 1);
    for label in name.labels().iter().rev() {
        out.extend_from_slice(label.as_str().as_bytes());
        out.push(0);
    }
    out
}

/// Decodes [`encode_name`] output. Total: bytes the encoder cannot
/// produce — a missing trailing separator, non-ASCII label bytes — are
/// reported as `Err`, never a panic, so a checksum collision or a logic
/// bug upstream surfaces as corruption instead of an abort.
// lint:certify(no-panic)
pub fn decode_name(bytes: &[u8]) -> Result<Name, String> {
    if bytes.is_empty() {
        return Ok(Name::root());
    }
    let body = bytes
        .strip_suffix(b"\x00")
        .ok_or_else(|| "name encoding missing trailing separator".to_string())?;
    let mut labels = Vec::new();
    for seg in body.split(|&b| b == 0) {
        let text = std::str::from_utf8(seg).map_err(|_| "label is not UTF-8".to_string())?;
        labels.push(Label::new(text).map_err(|_| format!("invalid label {text:?}"))?);
    }
    labels.reverse();
    Ok(Name::from_labels(labels))
}

/// The half-open upper bound of `prefix`'s subtree range: the prefix with
/// its final separator bumped from `0x00` to `0x01` (no label byte sorts
/// between them). `None` means "unbounded" — the root's subtree is the
/// whole store.
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut upper = prefix.to_vec();
    let last = upper.last_mut()?;
    debug_assert_eq!(*last, 0);
    *last = 1;
    Some(upper)
}

const TAG_A: u8 = 1;
const TAG_AAAA: u8 = 2;
const TAG_CNAME: u8 = 3;
const TAG_NS: u8 = 4;
const TAG_PTR: u8 = 5;
const TAG_TXT: u8 = 6;
const TAG_MX: u8 = 7;
const TAG_SOA: u8 = 8;
const TAG_OPAQUE: u8 = 9;

fn push_prefixed_name(out: &mut Vec<u8>, name: &Name) {
    let enc = encode_name(name);
    let len = u16::try_from(enc.len()).expect("names are under 64 KiB");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&enc);
}

fn take_prefixed_name(bytes: &[u8]) -> Result<(Name, &[u8]), String> {
    let (len_bytes, rest) =
        bytes.split_at_checked(2).ok_or_else(|| "truncated name length".to_string())?;
    let len_bytes: [u8; 2] =
        len_bytes.try_into().map_err(|_| "truncated name length".to_string())?;
    let len = usize::from(u16::from_be_bytes(len_bytes));
    let (enc, rest) =
        rest.split_at_checked(len).ok_or_else(|| "truncated name encoding".to_string())?;
    Ok((decode_name(enc)?, rest))
}

/// Encodes RDATA as a tag byte plus a deterministic payload.
pub fn encode_rdata(rdata: &RData) -> Vec<u8> {
    let mut out = Vec::new();
    match rdata {
        RData::A(a) => {
            out.push(TAG_A);
            out.extend_from_slice(&a.octets());
        }
        RData::Aaaa(a) => {
            out.push(TAG_AAAA);
            out.extend_from_slice(&a.octets());
        }
        RData::Cname(n) => {
            out.push(TAG_CNAME);
            out.extend_from_slice(&encode_name(n));
        }
        RData::Ns(n) => {
            out.push(TAG_NS);
            out.extend_from_slice(&encode_name(n));
        }
        RData::Ptr(n) => {
            out.push(TAG_PTR);
            out.extend_from_slice(&encode_name(n));
        }
        RData::Txt(s) => {
            out.push(TAG_TXT);
            out.extend_from_slice(s.as_bytes());
        }
        RData::Mx { preference, exchange } => {
            out.push(TAG_MX);
            out.extend_from_slice(&preference.to_be_bytes());
            out.extend_from_slice(&encode_name(exchange));
        }
        RData::Soa { mname, rname, serial, refresh, retry, expire, minimum } => {
            out.push(TAG_SOA);
            push_prefixed_name(&mut out, mname);
            push_prefixed_name(&mut out, rname);
            for v in [serial, refresh, retry, expire, minimum] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        RData::Opaque(b) => {
            out.push(TAG_OPAQUE);
            out.extend_from_slice(b);
        }
    }
    out
}

/// Decodes [`encode_rdata`] output. Total: unknown tags and malformed
/// payloads are reported as `Err`, never a panic.
// lint:certify(no-panic)
pub fn decode_rdata(bytes: &[u8]) -> Result<RData, String> {
    let (tag, rest) = bytes.split_first().ok_or_else(|| "empty rdata encoding".to_string())?;
    match *tag {
        TAG_A => {
            let octets: [u8; 4] =
                rest.try_into().map_err(|_| "A payload is not 4 bytes".to_string())?;
            Ok(RData::A(Ipv4Addr::from(octets)))
        }
        TAG_AAAA => {
            let octets: [u8; 16] =
                rest.try_into().map_err(|_| "AAAA payload is not 16 bytes".to_string())?;
            Ok(RData::Aaaa(Ipv6Addr::from(octets)))
        }
        TAG_CNAME => Ok(RData::Cname(decode_name(rest)?)),
        TAG_NS => Ok(RData::Ns(decode_name(rest)?)),
        TAG_PTR => Ok(RData::Ptr(decode_name(rest)?)),
        TAG_TXT => {
            let text = std::str::from_utf8(rest).map_err(|_| "TXT is not UTF-8".to_string())?;
            Ok(RData::Txt(text.to_string()))
        }
        TAG_MX => {
            let (pref, rest) =
                rest.split_at_checked(2).ok_or_else(|| "truncated MX preference".to_string())?;
            let pref: [u8; 2] =
                pref.try_into().map_err(|_| "truncated MX preference".to_string())?;
            Ok(RData::Mx { preference: u16::from_be_bytes(pref), exchange: decode_name(rest)? })
        }
        TAG_SOA => {
            let (mname, rest) = take_prefixed_name(rest)?;
            let (rname, rest) = take_prefixed_name(rest)?;
            if rest.len() != 20 {
                return Err("SOA counters are not 20 bytes".to_string());
            }
            let mut words =
                rest.chunks_exact(4).map(|c| c.try_into().map(u32::from_be_bytes).unwrap_or(0));
            let mut next = || words.next().unwrap_or(0);
            Ok(RData::Soa {
                mname,
                rname,
                serial: next(),
                refresh: next(),
                retry: next(),
                expire: next(),
                minimum: next(),
            })
        }
        TAG_OPAQUE => Ok(RData::Opaque(rest.to_vec())),
        other => Err(format!("unknown rdata tag {other}")),
    }
}

/// Encodes a full deduplication key.
pub fn encode_key(name: &Name, qtype: QType, rdata: &RData) -> CompositeKey {
    (encode_name(name), qtype.code(), encode_rdata(rdata))
}

/// Decodes a composite key back into an [`RrKey`]. Total — see
/// [`decode_key_parts`].
// lint:certify(no-panic)
pub fn decode_key(key: &CompositeKey) -> Result<RrKey, String> {
    decode_key_parts(&key.0, key.1, &key.2)
}

/// [`decode_key`] over borrowed columns — scans decode straight out of a
/// run's byte buffers without materialising an owned composite key.
/// Total: malformed columns and unknown qtype codes are `Err`, never a
/// panic.
// lint:certify(no-panic)
pub fn decode_key_parts(name: &[u8], qtype: u16, rdata: &[u8]) -> Result<RrKey, String> {
    Ok(RrKey {
        name: decode_name(name)?,
        qtype: QType::from_code(qtype).ok_or_else(|| format!("unknown qtype code {qtype}"))?,
        rdata: decode_rdata(rdata)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn name_roundtrip_and_reverse_label_order() {
        for s in ["com", "vendor.com", "a.b.vendor.com", "."] {
            let n = name(s);
            assert_eq!(decode_name(&encode_name(&n)).unwrap(), n, "{s}");
        }
        // Reverse-label order: a zone's children sort inside its range,
        // siblings outside it.
        let zone = encode_name(&name("vendor.com"));
        let child = encode_name(&name("x.vendor.com"));
        let sibling = encode_name(&name("vendorx.com"));
        assert!(child.starts_with(&zone));
        assert!(!sibling.starts_with(&zone));
        let upper = prefix_upper_bound(&zone).unwrap();
        assert!(child < upper);
        assert!(zone < upper);
    }

    #[test]
    fn subtree_range_matches_is_subdomain_of() {
        let zone = name("ads.vendor.com");
        let zenc = encode_name(&zone);
        for s in ["ads.vendor.com", "x.ads.vendor.com", "vendor.com", "bds.vendor.com", "com"] {
            let n = name(s);
            assert_eq!(encode_name(&n).starts_with(&zenc), n.is_subdomain_of(&zone), "{s} vs zone");
        }
    }

    #[test]
    fn rdata_roundtrips_every_variant() {
        let variants = vec![
            RData::A(Ipv4Addr::new(192, 0, 2, 7)),
            RData::Aaaa(Ipv6Addr::LOCALHOST),
            RData::Cname(name("edge.cdn.example.net")),
            RData::Ns(name("ns1.example.net")),
            RData::Ptr(name("host.example.com")),
            RData::Txt("v=spf1 -all".to_string()),
            RData::Mx { preference: 10, exchange: name("mx.example.com") },
            RData::Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2026,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            },
            RData::Opaque(vec![1, 2, 3, 0, 255]),
        ];
        for rdata in variants {
            assert_eq!(decode_rdata(&encode_rdata(&rdata)).unwrap(), rdata, "{rdata:?}");
        }
    }

    #[test]
    fn key_roundtrip_preserves_storage_accounting() {
        let key = RrKey {
            name: name("d1234.dns.xx.fbcdn.example"),
            qtype: QType::A,
            rdata: RData::A(Ipv4Addr::new(203, 0, 113, 9)),
        };
        let enc = encode_key(&key.name, key.qtype, &key.rdata);
        let back = decode_key(&enc).unwrap();
        assert_eq!(back, key);
        assert_eq!(back.storage_bytes(), key.storage_bytes());
    }
}
