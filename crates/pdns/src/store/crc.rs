//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The durability layer checksums every persisted artifact — run-file
//! sections, manifests, stream checkpoints — and the build environment
//! vendors no checksum crate, so the classic reflected table-driven
//! implementation lives here. CRC-32 detects all single-bit and
//! double-bit errors and any burst up to 32 bits, which covers the
//! torn-write and bit-rot cases the recovery tests inject.

/// The reflected CRC-32 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xedb8_8320;

/// The byte-indexed remainder table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` (initial value all-ones, final complement — the
/// standard zlib convention, so `crc32(b"123456789") == 0xcbf43926`).
// lint:certify(no-panic)
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        // lint:allow(no-panic): the index is masked to 0..=255 into a 256-entry table
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data = b"disposable domains are dns noise".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
