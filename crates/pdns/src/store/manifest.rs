//! The store manifest: the single source of truth for the live run set.
//!
//! Every mutation of the on-disk run set ends by atomically swapping a
//! new `MANIFEST` into place (see [`super::io::atomic_write`]). The
//! manifest is checksummed, monotonically numbered, and records the
//! exact live runs (file name, length, CRC-32) together with the
//! aggregate counters that make the recovered store a consistent prefix
//! of the observation sequence: a crash mid-flush or mid-compaction
//! recovers to the state of the last published manifest, and any run
//! file the manifest does not name is garbage to collect.
//!
//! Deletions are ordered *after* the manifest swap: a compaction's
//! merged-away inputs stay on disk until the manifest naming their
//! replacement is durable, so no crash window loses data.

use std::path::Path;

use super::crc::crc32;
use super::error::StoreError;
use super::io;
use crate::rpdns::DailyNewRrs;

/// Magic + format version leading every serialised manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"dnman01\n";

/// The manifest's file name inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// One live run file as the manifest records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFileMeta {
    /// File name within the store directory (`run-XXXXXXXX.bin`).
    pub name: String,
    /// Exact file length in bytes.
    pub len: u64,
    /// CRC-32 of the whole file.
    pub crc: u32,
}

/// The durable store state: config echo, aggregate counters, and the
/// exact live run set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Monotonic manifest number (strictly increases with every swap).
    pub seq: u64,
    /// Config echo: memtable flush threshold.
    pub memtable_cap: u64,
    /// Config echo: size-tier fanout.
    pub fanout: u64,
    /// Config echo: learned-index error bound.
    pub epsilon: u32,
    /// Next spill-file ordinal.
    pub next_run_id: u64,
    /// Observe calls folded in when this manifest was published — the
    /// durable prefix length a recovered store resumes from.
    pub observed: u64,
    /// Modelled storage footprint.
    pub storage_bytes: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compaction merges performed.
    pub compactions: u64,
    /// Per-day new/repeated counters.
    pub per_day: Vec<DailyNewRrs>,
    /// The live run files, in engine order (oldest first).
    pub runs: Vec<RunFileMeta>,
}

impl Manifest {
    /// Serialises the manifest: magic, fixed fields, per-day counters,
    /// run entries, CRC-32 footer over everything before the footer.
    // lint:certify(no-panic)
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        for v in [
            self.seq,
            self.memtable_cap,
            self.fanout,
            u64::from(self.epsilon),
            self.next_run_id,
            self.observed,
            self.storage_bytes,
            self.flushes,
            self.compactions,
            self.per_day.len() as u64,
            self.runs.len() as u64,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        for day in &self.per_day {
            out.extend_from_slice(&day.new_records.to_be_bytes());
            out.extend_from_slice(&day.repeated_records.to_be_bytes());
        }
        for run in &self.runs {
            let name = run.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_be_bytes());
            out.extend_from_slice(name);
            out.extend_from_slice(&run.len.to_be_bytes());
            out.extend_from_slice(&run.crc.to_be_bytes());
        }
        let footer = crc32(&out);
        out.extend_from_slice(&footer.to_be_bytes());
        out
    }

    /// Deserialises a manifest image. Total on arbitrary input: any
    /// truncation, bit flip, or forged length is an error, never a
    /// panic — the footer CRC is checked before any field is trusted.
    // lint:certify(no-panic)
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, String> {
        let Some((body, footer)) = bytes
            .len()
            .checked_sub(4)
            .filter(|&split| split >= MANIFEST_MAGIC.len())
            .and_then(|split| bytes.split_at_checked(split))
        else {
            return Err("manifest shorter than magic + footer".to_string());
        };
        let footer: [u8; 4] =
            footer.try_into().map_err(|_| "manifest footer is not 4 bytes".to_string())?;
        let stored = u32::from_be_bytes(footer);
        if crc32(body) != stored {
            return Err("manifest checksum mismatch".to_string());
        }
        let rest = body.strip_prefix(MANIFEST_MAGIC.as_slice()).ok_or("bad manifest magic")?;
        let mut cur = Cursor { bytes: rest, at: 0 };
        let seq = cur.u64()?;
        let memtable_cap = cur.u64()?;
        let fanout = cur.u64()?;
        let epsilon_raw = cur.u64()?;
        let epsilon = u32::try_from(epsilon_raw).map_err(|_| "epsilon out of range".to_string())?;
        let next_run_id = cur.u64()?;
        let observed = cur.u64()?;
        let storage_bytes = cur.u64()?;
        let flushes = cur.u64()?;
        let compactions = cur.u64()?;
        let days = cur.len_prefixed_count()?;
        let run_count = cur.len_prefixed_count()?;
        let mut per_day = Vec::with_capacity(days);
        for _ in 0..days {
            let new_records = cur.u64()?;
            let repeated_records = cur.u64()?;
            per_day.push(DailyNewRrs { new_records, repeated_records });
        }
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let name_len = usize::from(cur.u16()?);
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| "run file name is not UTF-8".to_string())?
                .to_string();
            let len = cur.u64()?;
            let crc = cur.u32()?;
            runs.push(RunFileMeta { name, len, crc });
        }
        if cur.at != cur.bytes.len() {
            return Err(format!(
                "{} trailing manifest bytes",
                cur.bytes.len().saturating_sub(cur.at)
            ));
        }
        Ok(Manifest {
            seq,
            memtable_cap,
            fanout,
            epsilon,
            next_run_id,
            observed,
            storage_bytes,
            flushes,
            compactions,
            per_day,
            runs,
        })
    }

    /// Atomically publishes this manifest as `dir/MANIFEST`.
    pub fn publish(&self, dir: &Path) -> Result<(), StoreError> {
        io::atomic_write(dir, MANIFEST_NAME, &self.to_bytes())
    }

    /// Loads `dir/MANIFEST`. `Ok(None)` when the file does not exist (a
    /// fresh store); corruption is an error, not a silent reset.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io("read", &path, &e)),
        };
        Manifest::from_bytes(&bytes).map(Some).map_err(|detail| StoreError::corrupt(&path, detail))
    }
}

/// A bounds-checked reader over the manifest body — every `take` is
/// validated, so malformed input surfaces as `Err`, never as a slice
/// panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    // lint:certify(no-panic)
    fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(len).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err("truncated manifest".to_string());
        };
        let s = self.bytes.get(self.at..end).ok_or_else(|| "truncated manifest".to_string())?;
        self.at = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let chunk: [u8; 8] =
            self.take(8)?.try_into().map_err(|_| "truncated manifest".to_string())?;
        Ok(u64::from_be_bytes(chunk))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let chunk: [u8; 4] =
            self.take(4)?.try_into().map_err(|_| "truncated manifest".to_string())?;
        Ok(u32::from_be_bytes(chunk))
    }

    fn u16(&mut self) -> Result<u16, String> {
        let chunk: [u8; 2] =
            self.take(2)?.try_into().map_err(|_| "truncated manifest".to_string())?;
        Ok(u16::from_be_bytes(chunk))
    }

    /// A count field, sanity-bounded by the bytes actually remaining so
    /// a forged count cannot drive a huge up-front allocation.
    fn len_prefixed_count(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| "count out of range".to_string())?;
        if n > self.bytes.len().saturating_sub(self.at) {
            return Err("count exceeds remaining bytes".to_string());
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            seq: 12,
            memtable_cap: 4096,
            fanout: 4,
            epsilon: 32,
            next_run_id: 9,
            observed: 123_456,
            storage_bytes: 987_654,
            flushes: 8,
            compactions: 3,
            per_day: vec![
                DailyNewRrs { new_records: 10, repeated_records: 2 },
                DailyNewRrs { new_records: 7, repeated_records: 9 },
            ],
            runs: vec![
                RunFileMeta { name: "run-00000004.bin".to_string(), len: 4096, crc: 0xdead_beef },
                RunFileMeta { name: "run-00000008.bin".to_string(), len: 128, crc: 7 },
            ],
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = Manifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn every_truncation_and_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Manifest::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x10;
            assert!(Manifest::from_bytes(&flipped).is_err(), "flip at {byte} accepted");
        }
    }

    #[test]
    fn publish_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dnsnoise-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None, "fresh dir has no manifest");
        let m = sample();
        m.publish(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        std::fs::write(dir.join(MANIFEST_NAME), b"garbage").unwrap();
        assert!(matches!(Manifest::load(&dir), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
