//! Typed errors for the persistent store.
//!
//! Every failure the durability layer can hit is one of three shapes: an
//! IO operation failed, persisted bytes failed validation, or a store was
//! opened with tuning that contradicts what its manifest records. All
//! variants carry owned strings so errors can be latched inside the
//! engine (the store degrades to memory-only on the first spill failure
//! rather than corrupting its on-disk state) and surfaced later as CLI
//! exit codes.

use std::fmt;
use std::path::{Path, PathBuf};

/// What went wrong in the persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system IO operation failed.
    Io {
        /// The operation (`write`, `fsync`, `rename`, …).
        op: &'static str,
        /// The path the operation targeted.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// Persisted bytes exist but fail validation (checksum, magic,
    /// layout, or ordering).
    Corrupt {
        /// The artifact that failed validation.
        path: PathBuf,
        /// What exactly did not validate.
        detail: String,
    },
    /// A store directory's manifest records tuning incompatible with the
    /// configuration it is being opened under.
    ConfigMismatch {
        /// The disagreement, field by field.
        detail: String,
    },
}

impl StoreError {
    /// Builds the IO variant from an [`std::io::Error`].
    pub fn io(op: &'static str, path: &Path, err: &std::io::Error) -> StoreError {
        StoreError::Io { op, path: path.to_path_buf(), message: err.to_string() }
    }

    /// Builds the corruption variant.
    pub fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "io error: {op} {}: {message}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store artifact {}: {detail}", path.display())
            }
            StoreError::ConfigMismatch { detail } => {
                write!(f, "store config mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
