//! The atomic writer: the only module in the persistence layer allowed
//! to touch the filesystem directly (enforced by the `fs-direct-write`
//! lint rule).
//!
//! Every durable artifact follows the same protocol: bytes go to
//! `<name>.tmp` in the target directory, the temp file is fsynced,
//! renamed over the final name, and the directory itself fsynced so the
//! rename survives a crash. A reader therefore only ever sees either the
//! old complete artifact or the new complete artifact — never a torn
//! write — and `*.tmp` leftovers are garbage, collected on open.
//!
//! [`failpoints`] is the seeded IO-fault injector the crash-recovery
//! tests drive: every syscall site consults a thread-local plan and can
//! be made to fail (optionally leaving a torn prefix behind, as a real
//! power cut mid-`write` would). Once a site trips, every later site on
//! the thread fails too — the simulated process is dead — until the plan
//! is disarmed.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use super::error::StoreError;

/// The seeded IO-fault injector. Inert unless armed; armed plans are
/// thread-local so concurrent tests never interfere.
pub mod failpoints {
    use std::cell::Cell;

    #[derive(Clone, Copy)]
    struct Plan {
        /// Zero-based IO-site ordinal to fail at (`u64::MAX` = count
        /// sites without ever tripping).
        trip_at: u64,
        /// Leave a half-written prefix behind at a tripped write site.
        torn: bool,
        /// Sites visited since arming.
        visited: u64,
        /// A site already tripped — the simulated process is dead.
        dead: bool,
    }

    thread_local! {
        static PLAN: Cell<Option<Plan>> = const { Cell::new(None) };
    }

    /// What a syscall site should do.
    pub(super) enum Site {
        /// Perform the operation normally.
        Proceed,
        /// Simulate a crash at this operation; `torn` asks a write site
        /// to leave a partial prefix behind first.
        Fail {
            /// Whether the failing write should leave a torn prefix.
            torn: bool,
        },
    }

    /// Arms the injector on this thread: the `trip_at`-th IO site (and
    /// every site after it) fails. `torn` makes the tripped site, if it
    /// is a write, leave a half-written file behind. Arm with
    /// `u64::MAX` to count sites without failing any.
    pub fn arm(trip_at: u64, torn: bool) {
        PLAN.with(|p| p.set(Some(Plan { trip_at, torn, visited: 0, dead: false })));
    }

    /// Disarms the injector and returns how many IO sites were visited
    /// while armed.
    pub fn disarm() -> u64 {
        PLAN.with(|p| p.take()).map_or(0, |plan| plan.visited)
    }

    /// Consulted by every syscall wrapper in the parent module.
    pub(super) fn site() -> Site {
        PLAN.with(|p| {
            let Some(mut plan) = p.get() else { return Site::Proceed };
            let ordinal = plan.visited;
            plan.visited += 1;
            let fail = plan.dead || ordinal == plan.trip_at;
            let torn = !plan.dead && ordinal == plan.trip_at && plan.torn;
            if fail {
                plan.dead = true;
            }
            p.set(Some(plan));
            if fail {
                Site::Fail { torn }
            } else {
                Site::Proceed
            }
        })
    }
}

/// The injected-fault error for a site the plan tripped.
fn injected(op: &'static str, path: &Path) -> StoreError {
    StoreError::Io { op, path: path.to_path_buf(), message: "injected fault".to_string() }
}

/// Creates `dir` and any missing parents.
pub fn create_dir_all(dir: &Path) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { .. } = failpoints::site() {
        return Err(injected("create_dir_all", dir));
    }
    std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir_all", dir, &e))
}

/// Writes `bytes` to `path` directly (no rename). Only the atomic
/// protocol below may use this — a torn fault here leaves a half-written
/// file, which is exactly why direct writes never target final names.
fn write_file(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { torn } = failpoints::site() {
        if torn {
            let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
        }
        return Err(injected("write", path));
    }
    std::fs::write(path, bytes).map_err(|e| StoreError::io("write", path, &e))
}

/// Flushes `path`'s contents to stable storage.
fn fsync_file(path: &Path) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { .. } = failpoints::site() {
        return Err(injected("fsync", path));
    }
    std::fs::File::open(path)
        .and_then(|f| f.sync_all())
        .map_err(|e| StoreError::io("fsync", path, &e))
}

/// Renames `from` over `to` (atomic within one directory on POSIX).
fn rename(from: &Path, to: &Path) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { .. } = failpoints::site() {
        return Err(injected("rename", to));
    }
    std::fs::rename(from, to).map_err(|e| StoreError::io("rename", to, &e))
}

/// Flushes `dir`'s entry table so a completed rename survives a crash.
fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { .. } = failpoints::site() {
        return Err(injected("fsync-dir", dir));
    }
    std::fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StoreError::io("fsync-dir", dir, &e))
}

/// Removes `path`.
pub fn remove_file(path: &Path) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { .. } = failpoints::site() {
        return Err(injected("remove", path));
    }
    std::fs::remove_file(path).map_err(|e| StoreError::io("remove", path, &e))
}

/// The temp-file name the atomic protocol stages `name` under.
// lint:certify(no-panic)
pub fn tmp_name(name: &str) -> String {
    format!("{name}.tmp")
}

/// Durably publishes `bytes` as `dir/name`: write to `dir/name.tmp`,
/// fsync, rename into place, fsync the directory. After a crash at any
/// point a reader sees either the previous `dir/name` or the new one,
/// plus at most one `.tmp` orphan.
pub fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(tmp_name(name));
    let fin = dir.join(name);
    write_file(&tmp, bytes)?;
    fsync_file(&tmp)?;
    rename(&tmp, &fin)?;
    fsync_dir(dir)
}

/// Appends a line to a plain-text ledger file (quarantine notes). Not
/// crash-atomic — the ledger is advisory diagnostics, never recovery
/// input — but still routed through the fault injector.
pub fn append_line(path: &Path, line: &str) -> Result<(), StoreError> {
    if let failpoints::Site::Fail { .. } = failpoints::site() {
        return Err(injected("append", path));
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"))
        .map_err(|e| StoreError::io("append", path, &e))
}

/// Renames `path` to `path.quarantined`, preserving the corrupt bytes
/// for diagnosis while removing them from the live set. Returns the
/// quarantine path.
pub fn quarantine_file(path: &Path) -> Result<PathBuf, StoreError> {
    let mut name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    name.push_str(".quarantined");
    let dest = path.with_file_name(name);
    rename(path, &dest)?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnsnoise-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_publishes_and_leaves_no_tmp() {
        let dir = tmp_dir("publish");
        atomic_write(&dir, "artifact.bin", b"payload").unwrap();
        assert_eq!(std::fs::read(dir.join("artifact.bin")).unwrap(), b"payload");
        assert!(!dir.join("artifact.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tripped_plan_is_sticky_and_counts_sites() {
        let dir = tmp_dir("sticky");
        failpoints::arm(u64::MAX, false);
        atomic_write(&dir, "a.bin", b"abc").unwrap();
        let sites = failpoints::disarm();
        assert_eq!(sites, 4, "write, fsync, rename, fsync-dir");

        failpoints::arm(2, false);
        let err = atomic_write(&dir, "b.bin", b"abc").unwrap_err();
        assert!(matches!(err, StoreError::Io { op: "rename", .. }), "{err}");
        // The simulated process is dead: later sites fail too.
        assert!(atomic_write(&dir, "c.bin", b"abc").is_err());
        failpoints::disarm();
        assert!(!dir.join("b.bin").exists());
        assert!(!dir.join("c.bin").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_leaves_a_prefix_behind() {
        let dir = tmp_dir("torn");
        failpoints::arm(0, true);
        let err = atomic_write(&dir, "t.bin", b"0123456789").unwrap_err();
        failpoints::disarm();
        assert!(matches!(err, StoreError::Io { op: "write", .. }));
        let torn = std::fs::read(dir.join("t.bin.tmp")).unwrap();
        assert_eq!(torn, b"01234", "half the payload survives the simulated cut");
        std::fs::remove_dir_all(&dir).ok();
    }
}
