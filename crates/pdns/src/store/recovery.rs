//! Recovery scan, typed quarantine ledger, and `fsck`.
//!
//! Opening a store directory and checking one (`dnsnoise fsck`) share a
//! single scan: load the manifest, verify every run it names (existence,
//! exact length, whole-file CRC, and a full parse — which itself checks
//! the section checksums and composite-key ordering), and account for
//! every other file in the directory. Nothing is silently dropped: each
//! rejected file lands in a typed quarantine class with exact counts and
//! a bounded set of samples, and the byte totals obey a conservation
//! invariant —
//!
//! ```text
//! bytes_scanned = bytes_live + bytes_quarantined + bytes_orphaned
//! ```
//!
//! — mirroring the capture-ingestion quarantine ledger, so "how much did
//! recovery discard" is always an exact number, never a guess.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use super::error::StoreError;
use super::io;
use super::manifest::{Manifest, RunFileMeta, MANIFEST_NAME};
use super::run::Run;

/// Advisory plain-text ledger of quarantine events, appended on lossy
/// opens and repairs. Diagnostics only — never recovery input.
pub const QUARANTINE_LEDGER: &str = "quarantine.log";

/// Cap on retained samples per quarantine class; counts are always
/// exact, samples are illustrative.
pub const MAX_QUARANTINE_SAMPLES: usize = 5;

/// Why a file was quarantined or flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineClass {
    /// The manifest names a run file that does not exist on disk.
    MissingRun,
    /// A manifest-listed run file fails a length or checksum gate
    /// (whole-file CRC, footer CRC, or a section CRC).
    BadRunChecksum,
    /// A manifest-listed run file checksums correctly but its decoded
    /// layout is invalid (bad magic, inconsistent offsets, entries out
    /// of composite-key order).
    BadRunLayout,
    /// A file in the store directory that the manifest does not account
    /// for (`*.tmp` staging leftovers, runs superseded before a crash).
    OrphanFile,
    /// A `*.quarantined` file preserved by an earlier lossy open.
    PriorQuarantine,
}

impl QuarantineClass {
    /// Stable identifier used in ledger lines and reports.
    pub fn id(&self) -> &'static str {
        match self {
            QuarantineClass::MissingRun => "missing-run",
            QuarantineClass::BadRunChecksum => "bad-run-checksum",
            QuarantineClass::BadRunLayout => "bad-run-layout",
            QuarantineClass::OrphanFile => "orphan-file",
            QuarantineClass::PriorQuarantine => "prior-quarantine",
        }
    }
}

/// Exact per-class accounting with bounded samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Files in this class (exact).
    pub files: u64,
    /// Bytes in this class (exact; missing files contribute zero).
    pub bytes: u64,
    /// Up to [`MAX_QUARANTINE_SAMPLES`] `file: reason` samples.
    pub samples: Vec<String>,
}

impl ClassStats {
    fn record(&mut self, bytes: u64, sample: String) {
        self.files += 1;
        self.bytes += bytes;
        if self.samples.len() < MAX_QUARANTINE_SAMPLES {
            self.samples.push(sample);
        }
    }
}

/// What a recovery scan found: manifest health, live-set size, and the
/// typed quarantine ledger with byte conservation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A `MANIFEST` file exists in the directory.
    pub manifest_present: bool,
    /// The manifest parsed and checksummed correctly (vacuously true
    /// when absent — a fresh store).
    pub manifest_ok: bool,
    /// Sequence number of the loaded manifest (0 when absent/corrupt).
    pub manifest_seq: u64,
    /// Runs verified end to end and admitted to the live set.
    pub runs_live: u64,
    /// Total bytes of every scanned file (manifest and ledger excluded).
    pub bytes_scanned: u64,
    /// Bytes in verified live runs.
    pub bytes_live: u64,
    /// Bytes in quarantined files (corrupt runs + prior quarantine).
    pub bytes_quarantined: u64,
    /// Bytes in orphaned files.
    pub bytes_orphaned: u64,
    /// Manifest-listed runs missing from disk.
    pub missing: ClassStats,
    /// Manifest-listed runs failing a length/checksum gate.
    pub bad_checksum: ClassStats,
    /// Manifest-listed runs with invalid decoded layout.
    pub bad_layout: ClassStats,
    /// Files the manifest does not account for.
    pub orphans: ClassStats,
    /// `*.quarantined` leftovers from earlier lossy opens.
    pub prior_quarantine: ClassStats,
}

impl RecoveryReport {
    fn class_mut(&mut self, class: QuarantineClass) -> &mut ClassStats {
        match class {
            QuarantineClass::MissingRun => &mut self.missing,
            QuarantineClass::BadRunChecksum => &mut self.bad_checksum,
            QuarantineClass::BadRunLayout => &mut self.bad_layout,
            QuarantineClass::OrphanFile => &mut self.orphans,
            QuarantineClass::PriorQuarantine => &mut self.prior_quarantine,
        }
    }

    /// Every `(class, stats)` pair, in report order.
    pub fn classes(&self) -> [(QuarantineClass, &ClassStats); 5] {
        [
            (QuarantineClass::MissingRun, &self.missing),
            (QuarantineClass::BadRunChecksum, &self.bad_checksum),
            (QuarantineClass::BadRunLayout, &self.bad_layout),
            (QuarantineClass::OrphanFile, &self.orphans),
            (QuarantineClass::PriorQuarantine, &self.prior_quarantine),
        ]
    }

    /// Total problems found: flagged files plus a corrupt manifest.
    pub fn problems(&self) -> u64 {
        let flagged: u64 = self.classes().iter().map(|(_, s)| s.files).sum();
        flagged + u64::from(self.manifest_present && !self.manifest_ok)
    }

    /// No problems at all.
    pub fn is_clean(&self) -> bool {
        self.problems() == 0
    }

    /// The byte-conservation invariant: every scanned byte is accounted
    /// live, quarantined, or orphaned.
    pub fn conserves(&self) -> bool {
        self.bytes_scanned == self.bytes_live + self.bytes_quarantined + self.bytes_orphaned
    }

    /// The conservation line, mirroring the ingest ledger's shape.
    pub fn conservation_line(&self) -> String {
        format!(
            "bytes {} scanned = {} live + {} quarantined + {} orphaned ({})",
            self.bytes_scanned,
            self.bytes_live,
            self.bytes_quarantined,
            self.bytes_orphaned,
            if self.conserves() { "conserved" } else { "VIOLATED" },
        )
    }

    /// Multi-line human-readable report (the `fsck` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let manifest_state = match (self.manifest_present, self.manifest_ok) {
            (false, _) => "absent (fresh store)".to_string(),
            (true, false) => "CORRUPT".to_string(),
            (true, true) => format!("seq={} (ok)", self.manifest_seq),
        };
        out.push_str(&format!("manifest: {manifest_state}\n"));
        out.push_str(&format!("live: {} runs / {} bytes\n", self.runs_live, self.bytes_live));
        for (class, stats) in self.classes() {
            if stats.files == 0 {
                continue;
            }
            out.push_str(&format!(
                "quarantine[{}]: {} files / {} bytes\n",
                class.id(),
                stats.files,
                stats.bytes
            ));
            for sample in &stats.samples {
                out.push_str(&format!("  sample {sample}\n"));
            }
        }
        out.push_str(&self.conservation_line());
        out.push('\n');
        if self.is_clean() {
            out.push_str("status: clean\n");
        } else {
            out.push_str(&format!("status: {} problems\n", self.problems()));
        }
        out
    }
}

/// A manifest-listed run that survived every verification gate.
pub(super) struct ScannedRun {
    /// Its manifest entry.
    pub meta: RunFileMeta,
    /// The decoded run.
    pub run: Run,
}

/// Everything a directory scan learns, for `open` and `fsck` to act on.
pub(super) struct Scan {
    /// The loaded manifest, when present and valid.
    pub manifest: Option<Manifest>,
    /// Verified live runs, in manifest (engine) order.
    pub live: Vec<ScannedRun>,
    /// Manifest-listed files that exist but failed verification.
    pub corrupt_paths: Vec<PathBuf>,
    /// Files the manifest does not account for.
    pub orphan_paths: Vec<PathBuf>,
    /// The typed ledger.
    pub report: RecoveryReport,
}

/// Scans `dir`: loads the manifest, verifies every listed run, and
/// classifies every other file. Read-only. With `tolerate_bad_manifest`
/// (the `fsck` mode) a corrupt manifest is reported instead of returned
/// as an error; files are then left unclassified-as-orphans since the
/// live set is unknowable.
pub(super) fn scan(dir: &Path, tolerate_bad_manifest: bool) -> Result<Scan, StoreError> {
    let mut report = RecoveryReport { manifest_ok: true, ..RecoveryReport::default() };
    let manifest_path = dir.join(MANIFEST_NAME);
    report.manifest_present = manifest_path.exists();
    let manifest = match Manifest::load(dir) {
        Ok(m) => m,
        Err(e) => {
            if !tolerate_bad_manifest {
                return Err(e);
            }
            report.manifest_ok = false;
            None
        }
    };
    if let Some(m) = &manifest {
        report.manifest_seq = m.seq;
    }

    let mut listed = BTreeSet::new();
    let mut live = Vec::new();
    let mut corrupt_paths = Vec::new();
    if let Some(m) = &manifest {
        for meta in &m.runs {
            listed.insert(meta.name.clone());
            let path = dir.join(&meta.name);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report
                        .class_mut(QuarantineClass::MissingRun)
                        .record(0, format!("{}: listed in manifest, not on disk", meta.name));
                    continue;
                }
                Err(e) => return Err(StoreError::io("read", &path, &e)),
            };
            report.bytes_scanned += bytes.len() as u64;
            let verdict = verify_run(meta, &bytes, m.epsilon);
            match verdict {
                Ok(run) => {
                    report.runs_live += 1;
                    report.bytes_live += bytes.len() as u64;
                    live.push(ScannedRun { meta: meta.clone(), run });
                }
                Err((class, reason)) => {
                    report.bytes_quarantined += bytes.len() as u64;
                    report
                        .class_mut(class)
                        .record(bytes.len() as u64, format!("{}: {reason}", meta.name));
                    corrupt_paths.push(path);
                }
            }
        }
    }

    let mut orphan_paths = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io("read_dir", dir, &e))?;
    let mut names: Vec<(String, u64)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir, &e))?;
        let meta = entry.metadata().map_err(|e| StoreError::io("stat", &entry.path(), &e))?;
        if !meta.is_file() {
            continue;
        }
        names.push((entry.file_name().to_string_lossy().into_owned(), meta.len()));
    }
    names.sort();
    for (name, len) in names {
        if name == MANIFEST_NAME || name == QUARANTINE_LEDGER || listed.contains(&name) {
            continue;
        }
        report.bytes_scanned += len;
        if name.ends_with(".quarantined") {
            report.bytes_quarantined += len;
            report
                .class_mut(QuarantineClass::PriorQuarantine)
                .record(len, format!("{name}: preserved by an earlier lossy open"));
        } else {
            report.bytes_orphaned += len;
            report
                .class_mut(QuarantineClass::OrphanFile)
                .record(len, format!("{name}: not in manifest"));
            orphan_paths.push(dir.join(name));
        }
    }

    Ok(Scan { manifest, live, corrupt_paths, orphan_paths, report })
}

/// Verifies one manifest-listed run image: exact length, whole-file CRC,
/// then a full parse (which checks footer/section CRCs, layout, and
/// composite-key order internally).
// lint:certify(no-panic)
fn verify_run(
    meta: &RunFileMeta,
    bytes: &[u8],
    epsilon: u32,
) -> Result<Run, (QuarantineClass, String)> {
    if bytes.len() as u64 != meta.len {
        return Err((
            QuarantineClass::BadRunChecksum,
            format!("length {} != manifest length {}", bytes.len(), meta.len),
        ));
    }
    if super::crc::crc32(bytes) != meta.crc {
        return Err((QuarantineClass::BadRunChecksum, "file CRC != manifest CRC".to_string()));
    }
    Run::from_bytes(bytes, epsilon).map_err(|reason| {
        let class = if reason.contains("checksum") {
            QuarantineClass::BadRunChecksum
        } else {
            QuarantineClass::BadRunLayout
        };
        (class, reason)
    })
}

/// Appends one ledger line per quarantined file to `quarantine.log`.
/// Best-effort: the ledger is advisory, so append failures are ignored.
pub(super) fn append_ledger(dir: &Path, report: &RecoveryReport) {
    let path = dir.join(QUARANTINE_LEDGER);
    for (class, stats) in report.classes() {
        for sample in &stats.samples {
            let _ = io::append_line(&path, &format!("{}: {sample}", class.id()));
        }
    }
}

/// Checks a store directory and returns the typed report. With `repair`,
/// additionally drops every flagged file and republishes the manifest so
/// a subsequent check is clean: corrupt manifest-listed runs and
/// `*.quarantined` leftovers are deleted, orphans are deleted, and a new
/// manifest (sequence + 1) naming only the verified live runs is
/// atomically swapped in. Repair is lossy by design — the ledger records
/// exactly what was dropped — and refuses to run when the manifest
/// itself is corrupt, since the live set is then unknowable.
///
/// # Errors
///
/// IO failures, and `repair` on a corrupt manifest.
pub fn fsck(dir: &Path, repair: bool) -> Result<RecoveryReport, StoreError> {
    if !dir.is_dir() {
        let e = std::io::Error::new(std::io::ErrorKind::NotFound, "no such store directory");
        return Err(StoreError::io("open", dir, &e));
    }
    let scan = scan(dir, true)?;
    if !repair || scan.report.is_clean() {
        return Ok(scan.report);
    }
    if !scan.report.manifest_ok {
        return Err(StoreError::corrupt(
            &dir.join(MANIFEST_NAME),
            "manifest corrupt; repair cannot determine the live set",
        ));
    }
    append_ledger(dir, &scan.report);
    for path in scan.corrupt_paths.iter().chain(&scan.orphan_paths) {
        io::remove_file(path)?;
    }
    // Prior-quarantine leftovers are not in corrupt/orphan path lists;
    // sweep them directly.
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io("read_dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir, &e))?;
        if entry.file_name().to_string_lossy().ends_with(".quarantined") {
            io::remove_file(&entry.path())?;
        }
    }
    if let Some(m) = scan.manifest {
        let dropped = m.runs.len() != scan.live.len();
        if dropped || !scan.report.missing.samples.is_empty() {
            let mut next = m;
            next.seq += 1;
            next.runs = scan.live.iter().map(|r| r.meta.clone()).collect();
            next.publish(dir)?;
        }
    }
    Ok(scan.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean_and_conserves() {
        let report = RecoveryReport { manifest_ok: true, ..RecoveryReport::default() };
        assert!(report.is_clean());
        assert!(report.conserves());
        assert!(report.render().contains("status: clean"));
        assert!(report.conservation_line().contains("(conserved)"));
    }

    #[test]
    fn class_stats_cap_samples_but_count_exactly() {
        let mut report = RecoveryReport { manifest_ok: true, ..RecoveryReport::default() };
        for i in 0..9 {
            report.bytes_scanned += 10;
            report.bytes_orphaned += 10;
            report.class_mut(QuarantineClass::OrphanFile).record(10, format!("f{i}: orphan"));
        }
        assert_eq!(report.orphans.files, 9);
        assert_eq!(report.orphans.bytes, 90);
        assert_eq!(report.orphans.samples.len(), MAX_QUARANTINE_SAMPLES);
        assert_eq!(report.problems(), 9);
        assert!(report.conserves());
        assert!(report.render().contains("quarantine[orphan-file]: 9 files / 90 bytes"));
    }

    #[test]
    fn fsck_on_a_missing_directory_is_an_io_error() {
        let dir = std::path::Path::new("/nonexistent/dnsnoise-fsck-test");
        assert!(matches!(fsck(dir, false), Err(StoreError::Io { .. })));
    }
}
