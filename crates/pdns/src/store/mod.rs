//! The unified pDNS storage API and the learned-index run-store engine.
//!
//! [`PdnsStore`] is the contract every rpDNS backend honours: observe
//! deduplicated records with first-seen days, answer point lookups and
//! zone-subtree scans, expose the daily new/repeated counters and the
//! modelled storage footprint, and merge shard-local stores with
//! earliest-first-seen-wins semantics. Two backends implement it:
//!
//! * [`RpDns`](crate::RpDns) — the original hash-map store (`memory`);
//! * [`RunStore`] — memtable + immutable columnar sorted runs with
//!   size-tiered compaction and a per-run hybrid learned/classic index
//!   (`disk`), optionally mirroring runs to files.
//!
//! The two are interchangeable and bit-identical in every counter,
//! lookup, and scan — pinned by the backend-equivalence property tests —
//! so pipelines select a backend at run time via [`PdnsBackend`] without
//! touching results.

pub mod crc;
pub mod engine;
pub mod error;
pub mod index;
pub mod io;
pub mod keys;
pub mod manifest;
pub mod recovery;
pub mod run;

use std::path::Path;

use dnsnoise_dns::{Name, Record, RrKey};

pub use engine::{RunStore, StoreConfig, StoreStats};
pub use error::StoreError;
pub use recovery::{fsck, RecoveryReport};
pub use run::Run;

use crate::rpdns::{DailyNewRrs, RpDns};
use keys::CompositeKey;

/// The storage contract shared by every rpDNS backend.
pub trait PdnsStore {
    /// Records one observation of `record` on `day`; returns `true` when
    /// the record is new to the store.
    fn observe(&mut self, record: &Record, day: u64) -> bool;

    /// The day `key` was first seen, if stored.
    fn first_seen(&self, key: &RrKey) -> Option<u64>;

    /// Number of distinct records stored.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The daily new/repeated counters (index = day).
    fn daily_stats(&self) -> &[DailyNewRrs];

    /// Modelled storage footprint in bytes.
    fn storage_bytes(&self) -> u64;

    /// Every stored `(key, first-seen day)` whose name lies in `zone`'s
    /// subtree (the zone apex included), in canonical reverse-label key
    /// order — identical across backends. `Name::root()` scans the whole
    /// store.
    fn scan_prefix(&self, zone: &Name) -> Vec<(RrKey, u64)>;

    /// Merges a shard-local store collected from disjoint traffic:
    /// per-day counters add; a record seen by both sides keeps the
    /// earliest first-seen day, has its later sighting re-classified as
    /// repeated on the later day, and its duplicate storage refunded.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// An empty store configured like this one, for per-shard
    /// collection ahead of [`merge`](PdnsStore::merge).
    fn fork(&self) -> Self
    where
        Self: Sized;
}

impl PdnsStore for RpDns {
    fn observe(&mut self, record: &Record, day: u64) -> bool {
        RpDns::observe(self, record, day)
    }

    fn first_seen(&self, key: &RrKey) -> Option<u64> {
        RpDns::first_seen(self, key)
    }

    fn len(&self) -> usize {
        RpDns::len(self)
    }

    fn daily_stats(&self) -> &[DailyNewRrs] {
        self.per_day()
    }

    fn storage_bytes(&self) -> u64 {
        RpDns::storage_bytes(self)
    }

    fn scan_prefix(&self, zone: &Name) -> Vec<(RrKey, u64)> {
        let mut hits: Vec<(CompositeKey, RrKey, u64)> = self
            .iter()
            .filter(|(key, _)| key.name.is_subdomain_of(zone))
            .map(|(key, day)| {
                (keys::encode_key(&key.name, key.qtype, &key.rdata), key.clone(), day)
            })
            .collect();
        hits.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        hits.into_iter().map(|(_, key, day)| (key, day)).collect()
    }

    fn merge(&mut self, other: Self) {
        RpDns::merge(self, other)
    }

    fn fork(&self) -> Self {
        RpDns::new()
    }
}

impl PdnsStore for RunStore {
    fn observe(&mut self, record: &Record, day: u64) -> bool {
        RunStore::observe(self, record, day)
    }

    fn first_seen(&self, key: &RrKey) -> Option<u64> {
        RunStore::first_seen(self, key)
    }

    fn len(&self) -> usize {
        RunStore::len(self)
    }

    fn daily_stats(&self) -> &[DailyNewRrs] {
        self.per_day()
    }

    fn storage_bytes(&self) -> u64 {
        RunStore::storage_bytes(self)
    }

    fn scan_prefix(&self, zone: &Name) -> Vec<(RrKey, u64)> {
        RunStore::scan_prefix(self, zone)
    }

    fn merge(&mut self, other: Self) {
        RunStore::merge(self, other)
    }

    fn fork(&self) -> Self {
        RunStore::fork(self)
    }
}

/// Which [`PdnsBackend`] variant to build — the value of the CLI's
/// `--store` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The in-memory hash-map store ([`RpDns`]); the default, keeping
    /// existing invocations byte-identical.
    #[default]
    Memory,
    /// The learned-index run store ([`RunStore`]).
    Disk,
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "memory" => Ok(BackendKind::Memory),
            "disk" => Ok(BackendKind::Disk),
            other => Err(format!("unknown store backend `{other}` (expected memory|disk)")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Memory => "memory",
            BackendKind::Disk => "disk",
        })
    }
}

/// A run-time-selected rpDNS backend. Both variants honour
/// [`PdnsStore`] bit-identically; pipelines hold this enum so `--store`
/// can pick the engine without generics leaking into every layer.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one long-lived value per pipeline; boxing would cost a deref on the hot observe path
pub enum PdnsBackend {
    /// The in-memory hash-map store.
    Memory(RpDns),
    /// The learned-index run store.
    Disk(RunStore),
}

impl PdnsBackend {
    /// Builds a backend of `kind`; `path` mirrors the disk backend's
    /// runs under the given directory (ignored for `memory`).
    pub fn create(kind: BackendKind, path: Option<&Path>) -> PdnsBackend {
        match kind {
            BackendKind::Memory => PdnsBackend::Memory(RpDns::new()),
            BackendKind::Disk => {
                let mut config = StoreConfig::default();
                if let Some(dir) = path {
                    config = config.with_spill(dir);
                }
                PdnsBackend::Disk(RunStore::with_config(config))
            }
        }
    }

    /// The backend kind in force.
    pub fn kind(&self) -> BackendKind {
        match self {
            PdnsBackend::Memory(_) => BackendKind::Memory,
            PdnsBackend::Disk(_) => BackendKind::Disk,
        }
    }

    /// The first persistence failure the backend latched, if any (always
    /// `None` for the memory backend). A latched store has degraded to
    /// memory-only: results stay exact, the on-disk mirror is stale —
    /// callers surface this as a non-zero exit.
    pub fn io_error(&self) -> Option<&StoreError> {
        match self {
            PdnsBackend::Memory(_) => None,
            PdnsBackend::Disk(s) => s.io_error(),
        }
    }
}

impl Default for PdnsBackend {
    fn default() -> Self {
        PdnsBackend::Memory(RpDns::new())
    }
}

impl PdnsStore for PdnsBackend {
    fn observe(&mut self, record: &Record, day: u64) -> bool {
        match self {
            PdnsBackend::Memory(s) => s.observe(record, day),
            PdnsBackend::Disk(s) => s.observe(record, day),
        }
    }

    fn first_seen(&self, key: &RrKey) -> Option<u64> {
        match self {
            PdnsBackend::Memory(s) => s.first_seen(key),
            PdnsBackend::Disk(s) => s.first_seen(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            PdnsBackend::Memory(s) => s.len(),
            PdnsBackend::Disk(s) => s.len(),
        }
    }

    fn daily_stats(&self) -> &[DailyNewRrs] {
        match self {
            PdnsBackend::Memory(s) => s.per_day(),
            PdnsBackend::Disk(s) => s.per_day(),
        }
    }

    fn storage_bytes(&self) -> u64 {
        match self {
            PdnsBackend::Memory(s) => s.storage_bytes(),
            PdnsBackend::Disk(s) => s.storage_bytes(),
        }
    }

    fn scan_prefix(&self, zone: &Name) -> Vec<(RrKey, u64)> {
        match self {
            PdnsBackend::Memory(s) => PdnsStore::scan_prefix(s, zone),
            PdnsBackend::Disk(s) => s.scan_prefix(zone),
        }
    }

    fn merge(&mut self, other: Self) {
        match (self, other) {
            (PdnsBackend::Memory(mine), PdnsBackend::Memory(theirs)) => mine.merge(theirs),
            (PdnsBackend::Disk(mine), PdnsBackend::Disk(theirs)) => mine.merge(theirs),
            (mine, theirs) => panic!(
                "cannot merge pDNS backends of different kinds ({} vs {})",
                mine.kind(),
                theirs.kind()
            ),
        }
    }

    fn fork(&self) -> Self {
        match self {
            PdnsBackend::Memory(s) => PdnsBackend::Memory(PdnsStore::fork(s)),
            PdnsBackend::Disk(s) => PdnsBackend::Disk(s.fork()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_dns::{QType, RData, Ttl};
    use std::net::Ipv4Addr;

    fn rr(name: &str, ip: u8) -> Record {
        Record::new(
            name.parse().unwrap(),
            QType::A,
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, ip)),
        )
    }

    fn backends() -> Vec<PdnsBackend> {
        vec![
            PdnsBackend::create(BackendKind::Memory, None),
            PdnsBackend::create(BackendKind::Disk, None),
        ]
    }

    #[test]
    fn backend_kind_parses_and_prints() {
        assert_eq!("memory".parse::<BackendKind>().unwrap(), BackendKind::Memory);
        assert_eq!("disk".parse::<BackendKind>().unwrap(), BackendKind::Disk);
        assert!("floppy".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Disk.to_string(), "disk");
    }

    #[test]
    fn both_backends_agree_through_the_trait() {
        let records: Vec<Record> =
            (0..50u8).map(|i| rr(&format!("r{i}.zone{}.example", i % 3), i)).collect();
        let mut summaries = Vec::new();
        for mut store in backends() {
            for (i, r) in records.iter().enumerate() {
                store.observe(r, (i % 4) as u64);
                store.observe(r, 3);
            }
            let zone: Name = "zone1.example".parse().unwrap();
            summaries.push((
                store.len(),
                store.storage_bytes(),
                store.daily_stats().to_vec(),
                store.scan_prefix(&zone),
                store.first_seen(&records[7].key()),
            ));
        }
        assert_eq!(summaries[0], summaries[1], "memory and disk disagree");
        assert!(!summaries[0].3.is_empty(), "zone scan found nothing");
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn mixed_backend_merge_panics() {
        let mut memory = PdnsBackend::create(BackendKind::Memory, None);
        let disk = PdnsBackend::create(BackendKind::Disk, None);
        memory.merge(disk);
    }

    #[test]
    fn fork_and_merge_match_sequential_observation() {
        for kind in [BackendKind::Memory, BackendKind::Disk] {
            let mut sequential = PdnsBackend::create(kind, None);
            let mut parent = PdnsBackend::create(kind, None);
            let mut shard = parent.fork();
            for i in 0..40u8 {
                let r = rr(&format!("f{i}.example"), i);
                sequential.observe(&r, 0);
                if i % 2 == 0 {
                    parent.observe(&r, 0)
                } else {
                    shard.observe(&r, 0)
                };
            }
            // One record seen by both shards: merge must dedup it.
            let dup = rr("f0.example", 0);
            sequential.observe(&dup, 1);
            shard.observe(&dup, 1);
            parent.merge(shard);
            assert_eq!(parent.len(), sequential.len(), "{kind}");
            assert_eq!(parent.storage_bytes(), sequential.storage_bytes(), "{kind}");
            assert_eq!(parent.daily_stats(), sequential.daily_stats(), "{kind}");
            assert_eq!(
                parent.scan_prefix(&Name::root()),
                sequential.scan_prefix(&Name::root()),
                "{kind}"
            );
        }
    }
}
