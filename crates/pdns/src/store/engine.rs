//! The run-store engine: an append-friendly memtable over immutable
//! sorted runs with deterministic size-tiered compaction.
//!
//! Writes land in a `BTreeMap` memtable; at `memtable_cap` keys it
//! flushes to an immutable columnar [`Run`]. Runs are grouped into size
//! tiers (`tier t` holds runs of at least `memtable_cap · fanoutᵗ`
//! entries); whenever a tier accumulates `fanout` runs, *all* runs in
//! that tier merge into one — a rule driven purely by entry counts, so
//! the run layout after any observation sequence is a deterministic
//! function of that sequence.
//!
//! The engine maintains the same aggregate accounting as
//! [`RpDns`](crate::RpDns) — per-day new/repeated counters and modelled
//! storage bytes — and its [`merge`](RunStore::merge) applies the exact
//! earliest-first-seen-wins counter adjustments of `RpDns::merge`, so
//! the two backends are interchangeable and bit-identical in output.
//!
//! With a spill directory configured, every live run is mirrored to
//! `run-<id>.bin` ([`Run::to_bytes`] images); compaction replaces the
//! merged-away files with the new run's. The in-memory byte buffers
//! remain the serving copy (the mmap-style design from the roadmap);
//! the spill is the on-disk image of exactly the live run set.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dnsnoise_dns::{Name, Record, RrKey};

use super::index::DEFAULT_EPSILON;
use super::keys::{self, CompositeKey};
use super::run::Run;
use crate::rpdns::DailyNewRrs;

/// Tuning and placement knobs for a [`RunStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Memtable flush threshold, in keys.
    pub memtable_cap: usize,
    /// Size-tier growth factor and per-tier run budget.
    pub fanout: usize,
    /// Learned-index error bound.
    pub epsilon: u32,
    /// Directory to mirror run files into (`None` = memory only).
    pub spill: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { memtable_cap: 4096, fanout: 4, epsilon: DEFAULT_EPSILON, spill: None }
    }
}

impl StoreConfig {
    /// This configuration with runs mirrored under `dir`.
    pub fn with_spill(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill = Some(dir.into());
        self
    }
}

/// Counters describing the engine's internal shape, for benchmarks and
/// diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live sorted runs.
    pub runs: usize,
    /// Keys currently buffered in the memtable.
    pub memtable_keys: usize,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compaction merges performed.
    pub compactions: u64,
    /// Live runs indexed by a learned model (the rest use the classic
    /// fallback).
    pub learned_runs: usize,
}

/// The learned-index run store. See the module docs for the design; see
/// [`PdnsStore`](super::PdnsStore) for the API it shares with
/// [`RpDns`](crate::RpDns).
#[derive(Debug)]
pub struct RunStore {
    config: StoreConfig,
    memtable: BTreeMap<CompositeKey, u64>,
    runs: Vec<Run>,
    /// Spill file of each run in `runs`, when mirroring is on.
    run_paths: Vec<Option<PathBuf>>,
    next_run_id: u64,
    per_day: Vec<DailyNewRrs>,
    storage_bytes: u64,
    flushes: u64,
    compactions: u64,
}

impl RunStore {
    /// An empty store with default tuning and no spill directory.
    pub fn new() -> RunStore {
        RunStore::with_config(StoreConfig::default())
    }

    /// An empty store with explicit tuning. Creates the spill directory
    /// eagerly so misconfiguration fails at construction, not mid-run.
    pub fn with_config(config: StoreConfig) -> RunStore {
        if let Some(dir) = &config.spill {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                panic!("cannot create pDNS spill directory {}: {e}", dir.display())
            });
        }
        RunStore {
            config,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            run_paths: Vec::new(),
            next_run_id: 0,
            per_day: Vec::new(),
            storage_bytes: 0,
            flushes: 0,
            compactions: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Internal-shape counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            runs: self.runs.len(),
            memtable_keys: self.memtable.len(),
            flushes: self.flushes,
            compactions: self.compactions,
            learned_runs: self.runs.iter().filter(|r| r.index_is_learned()).count(),
        }
    }

    /// Number of distinct records stored.
    pub fn len(&self) -> usize {
        self.memtable.len() + self.runs.iter().map(Run::len).sum::<usize>()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The daily new/repeated counters (index = day).
    pub fn per_day(&self) -> &[DailyNewRrs] {
        &self.per_day
    }

    /// Modelled storage footprint in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bytes
    }

    fn ensure_day(&mut self, day: u64) {
        let needed = day as usize + 1;
        if self.per_day.len() < needed {
            self.per_day.resize(needed, DailyNewRrs::default());
        }
    }

    fn get_encoded(&self, key: &CompositeKey) -> Option<u64> {
        // Every key lives in exactly one place (observe dedups before
        // inserting), so probe order is immaterial; memtable first is
        // simply cheapest. After `optimize` the memtable is empty and
        // lookups go straight to the single run.
        if !self.memtable.is_empty() {
            if let Some(&day) = self.memtable.get(key) {
                return Some(day);
            }
        }
        self.runs.iter().find_map(|run| run.get(key))
    }

    /// Records one observation of `record` on `day`. Returns `true` when
    /// the record is new to the store.
    pub fn observe(&mut self, record: &Record, day: u64) -> bool {
        self.ensure_day(day);
        let key = keys::encode_key(&record.name, record.qtype, &record.rdata);
        if self.get_encoded(&key).is_some() {
            self.per_day[day as usize].repeated_records += 1;
            return false;
        }
        self.storage_bytes += RrKey::storage_bytes_of(&record.name, &record.rdata) as u64;
        self.per_day[day as usize].new_records += 1;
        self.memtable.insert(key, day);
        if self.memtable.len() >= self.config.memtable_cap {
            self.flush();
        }
        true
    }

    /// The day `key` was first seen, if stored.
    pub fn first_seen(&self, key: &RrKey) -> Option<u64> {
        self.get_encoded(&keys::encode_key(&key.name, key.qtype, &key.rdata))
    }

    /// Flushes the memtable into a new immutable run and compacts.
    fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(CompositeKey, u64)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        let run = Run::build(entries, self.config.epsilon);
        self.flushes += 1;
        self.push_run(run);
        self.compact();
    }

    fn push_run(&mut self, run: Run) {
        let path = self.spill_run(&run);
        self.runs.push(run);
        self.run_paths.push(path);
    }

    fn spill_run(&mut self, run: &Run) -> Option<PathBuf> {
        let dir = self.config.spill.as_ref()?;
        let path = dir.join(format!("run-{:08}.bin", self.next_run_id));
        self.next_run_id += 1;
        std::fs::write(&path, run.to_bytes())
            .unwrap_or_else(|e| panic!("cannot spill pDNS run to {}: {e}", path.display()));
        Some(path)
    }

    fn remove_runs(&mut self, indices: &[usize]) -> Vec<Run> {
        // Indices arrive ascending; remove back-to-front to keep them
        // valid, then restore first-added-first order.
        let mut removed = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            removed.push(self.runs.remove(i));
            if let Some(path) = self.run_paths.remove(i) {
                let _ = std::fs::remove_file(path);
            }
        }
        removed.reverse();
        removed
    }

    /// The size tier of a run: the largest `t` with
    /// `len ≥ memtable_cap · fanoutᵗ`.
    fn tier_of(&self, len: usize) -> u32 {
        let cap = self.config.memtable_cap.max(1);
        let fanout = self.config.fanout.max(2);
        let mut t = 0u32;
        let mut bound = cap.saturating_mul(fanout);
        while len >= bound {
            t += 1;
            bound = bound.saturating_mul(fanout);
        }
        t
    }

    /// Deterministic size-tiered compaction: while any tier holds at
    /// least `fanout` runs, merge the lowest such tier entirely.
    fn compact(&mut self) {
        let fanout = self.config.fanout.max(2);
        loop {
            let tiers: Vec<u32> = self.runs.iter().map(|r| self.tier_of(r.len())).collect();
            let Some(&lowest) = tiers
                .iter()
                .filter(|&&t| tiers.iter().filter(|&&u| u == t).count() >= fanout)
                .min()
            else {
                return;
            };
            let victims: Vec<usize> = (0..tiers.len()).filter(|&i| tiers[i] == lowest).collect();
            let runs = self.remove_runs(&victims);
            let merged = merge_runs(runs, self.config.epsilon);
            self.compactions += 1;
            self.push_run(merged);
        }
    }

    /// Flushes pending writes and merges every run into a single one —
    /// the read-optimised shape used before sustained lookup phases.
    pub fn optimize(&mut self) {
        self.flush();
        if self.runs.len() > 1 {
            let all: Vec<usize> = (0..self.runs.len()).collect();
            let runs = self.remove_runs(&all);
            let merged = merge_runs(runs, self.config.epsilon);
            self.compactions += 1;
            self.push_run(merged);
        }
    }

    /// Every stored `(key, first-seen day)` with `name` in `zone`'s
    /// subtree (the zone itself included), in canonical composite-key
    /// order.
    pub fn scan_prefix(&self, zone: &Name) -> Vec<(RrKey, u64)> {
        let prefix = keys::encode_name(zone);
        // Borrowed columns only: hits reference the memtable's keys and
        // the runs' byte buffers, so a scan clones nothing until the
        // final decode.
        let mut hits: Vec<(&[u8], u16, &[u8], u64)> = Vec::new();
        for (key, &day) in self.memtable.range((prefix.clone(), 0, Vec::new())..) {
            if !key.0.starts_with(&prefix) {
                break;
            }
            hits.push((key.0.as_slice(), key.1, key.2.as_slice(), day));
        }
        for run in &self.runs {
            let (lo, hi) = run.prefix_range(&prefix);
            for i in lo..hi {
                hits.push((run.name_at(i), run.qtype_at(i), run.rdata_at(i), run.day_at(i)));
            }
        }
        // Sources are individually sorted and mutually disjoint; one
        // sort yields the canonical global order.
        hits.sort_unstable();
        hits.iter()
            .map(|&(name, qtype, rdata, day)| (keys::decode_key_parts(name, qtype, rdata), day))
            .collect()
    }

    /// Every stored entry in canonical order, drained for rebuilds.
    fn drain_entries(&mut self) -> Vec<(CompositeKey, u64)> {
        let mut entries: Vec<(CompositeKey, u64)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        let old: Vec<usize> = (0..self.runs.len()).collect();
        for run in self.remove_runs(&old) {
            entries.extend(run.entries());
        }
        entries.sort_unstable();
        entries
    }

    /// Merges another run store into this one with the exact
    /// earliest-first-seen-wins semantics of
    /// [`RpDns::merge`](crate::RpDns::merge): per-day counters add, a
    /// record present on both sides keeps its earliest day, its later
    /// sighting is re-classified as repeated on the later day, and the
    /// duplicate's storage is refunded. The merged store is rebuilt as a
    /// single run.
    pub fn merge(&mut self, other: RunStore) {
        let mut other = other;
        if self.per_day.len() < other.per_day.len() {
            self.per_day.resize(other.per_day.len(), DailyNewRrs::default());
        }
        for (slot, theirs) in self.per_day.iter_mut().zip(&other.per_day) {
            slot.new_records += theirs.new_records;
            slot.repeated_records += theirs.repeated_records;
        }
        self.storage_bytes += other.storage_bytes;

        let mine = self.drain_entries();
        let theirs = other.drain_entries();
        let mut merged: Vec<(CompositeKey, u64)> = Vec::with_capacity(mine.len() + theirs.len());
        let mut a = mine.into_iter().peekable();
        let mut b = theirs.into_iter().peekable();
        loop {
            let take_from_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.0 == y.0 {
                        // Cross-store duplicate: earliest first-seen
                        // wins, the later sighting becomes a repeat and
                        // its storage is refunded.
                        let (key, day_a) = a.next().expect("peeked");
                        let (_, day_b) = b.next().expect("peeked");
                        let dup_day = day_a.max(day_b);
                        let d = &mut self.per_day[dup_day as usize];
                        d.new_records -= 1;
                        d.repeated_records += 1;
                        self.storage_bytes -= keys::decode_key(&key).storage_bytes() as u64;
                        merged.push((key, day_a.min(day_b)));
                        continue;
                    }
                    x.0 < y.0
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_from_a { a.next() } else { b.next() };
            merged.push(next.expect("peeked side is non-empty"));
        }
        if !merged.is_empty() {
            let run = build_run(merged, self.config.epsilon);
            self.compactions += 1;
            self.push_run(run);
        }
    }

    /// An empty store with this store's tuning, for per-shard
    /// collection. The fork never spills — shard-local state is merged
    /// back into the (spilling) parent, so only the parent owns files.
    pub fn fork(&self) -> RunStore {
        RunStore::with_config(StoreConfig { spill: None, ..self.config.clone() })
    }
}

impl Default for RunStore {
    fn default() -> Self {
        RunStore::new()
    }
}

/// Builds one run from sorted distinct entries (a free function so the
/// cast-free body of [`RunStore::merge`] stays within the merge-cast
/// lint's remit while the columnar packing lives elsewhere).
fn build_run(entries: Vec<(CompositeKey, u64)>, epsilon: u32) -> Run {
    Run::build(entries, epsilon)
}

/// K-way merge of same-store runs into one. Keys are disjoint across a
/// single store's runs (observe dedups against the whole store before
/// inserting), so this is a pure interleave; the debug assertion in
/// [`Run::build`] would catch any violation.
fn merge_runs(runs: Vec<Run>, epsilon: u32) -> Run {
    let mut entries: Vec<(CompositeKey, u64)> = Vec::with_capacity(runs.iter().map(Run::len).sum());
    for run in &runs {
        entries.extend(run.entries());
    }
    entries.sort_unstable();
    build_run(entries, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_dns::{QType, RData, Ttl};
    use std::net::Ipv4Addr;

    fn rr(name: &str, ip: u8) -> Record {
        Record::new(
            name.parse().unwrap(),
            QType::A,
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, ip)),
        )
    }

    fn tiny_config() -> StoreConfig {
        StoreConfig { memtable_cap: 8, fanout: 2, ..StoreConfig::default() }
    }

    #[test]
    fn observe_dedups_across_memtable_and_runs() {
        let mut store = RunStore::with_config(tiny_config());
        for i in 0..100u8 {
            assert!(store.observe(&rr(&format!("h{i}.example"), i), 0));
        }
        assert!(store.stats().runs > 0, "tiny cap must have flushed");
        for i in 0..100u8 {
            assert!(!store.observe(&rr(&format!("h{i}.example"), i), 1), "repeat {i}");
        }
        assert_eq!(store.len(), 100);
        assert_eq!(store.per_day()[0].new_records, 100);
        assert_eq!(store.per_day()[1].repeated_records, 100);
    }

    #[test]
    fn compaction_is_driven_by_counts_alone() {
        let mut a = RunStore::with_config(tiny_config());
        let mut b = RunStore::with_config(tiny_config());
        for i in 0..300u16 {
            let r = rr(&format!("c{i}.example"), (i % 251) as u8);
            a.observe(&r, 0);
            b.observe(&r, 0);
        }
        assert_eq!(a.stats(), b.stats(), "same inputs, same shape");
        assert!(a.stats().compactions > 0, "tiny tiers must have compacted");
        // Tiered layout: strictly fewer runs than flushes.
        assert!(a.stats().runs < a.stats().flushes as usize);
    }

    #[test]
    fn optimize_collapses_to_one_run_and_keeps_answers() {
        let mut store = RunStore::with_config(tiny_config());
        for i in 0..200u8 {
            store.observe(&rr(&format!("o{i}.example"), i), u64::from(i % 5));
        }
        let before: Vec<_> = store.scan_prefix(&Name::root());
        store.optimize();
        assert_eq!(store.stats().runs, 1);
        assert_eq!(store.stats().memtable_keys, 0);
        assert_eq!(store.scan_prefix(&Name::root()), before);
    }

    #[test]
    fn spill_mirrors_exactly_the_live_runs() {
        let dir = std::env::temp_dir().join(format!("dnsnoise-store-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = RunStore::with_config(
            StoreConfig { memtable_cap: 8, fanout: 2, ..Default::default() }.with_spill(&dir),
        );
        for i in 0..200u8 {
            store.observe(&rr(&format!("s{i}.example"), i), 0);
        }
        store.optimize();
        let mut files: Vec<PathBuf> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        files.sort();
        assert_eq!(files.len(), store.stats().runs, "one file per live run");
        // The spilled image round-trips into the identical run.
        let bytes = std::fs::read(&files[0]).unwrap();
        let reloaded = Run::from_bytes(&bytes, store.config().epsilon).unwrap();
        assert_eq!(reloaded.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
