//! The run-store engine: an append-friendly memtable over immutable
//! sorted runs with deterministic size-tiered compaction.
//!
//! Writes land in a `BTreeMap` memtable; at `memtable_cap` keys it
//! flushes to an immutable columnar [`Run`]. Runs are grouped into size
//! tiers (`tier t` holds runs of at least `memtable_cap · fanoutᵗ`
//! entries); whenever a tier accumulates `fanout` runs, *all* runs in
//! that tier merge into one — a rule driven purely by entry counts, so
//! the run layout after any observation sequence is a deterministic
//! function of that sequence.
//!
//! The engine maintains the same aggregate accounting as
//! [`RpDns`](crate::RpDns) — per-day new/repeated counters and modelled
//! storage bytes — and its [`merge`](RunStore::merge) applies the exact
//! earliest-first-seen-wins counter adjustments of `RpDns::merge`, so
//! the two backends are interchangeable and bit-identical in output.
//!
//! # Durability
//!
//! With a spill directory configured, every live run is mirrored to a
//! checksummed `run-<id>.bin` image via the atomic writer
//! ([`super::io::atomic_write`]): staged as `.tmp`, fsynced, renamed,
//! directory fsynced. The in-memory byte buffers remain the serving
//! copy; the spill is the on-disk image of exactly the live run set.
//!
//! The crash protocol is *manifest-before-delete*: every flush,
//! compaction, and merge ends by atomically swapping a new checksummed
//! [`Manifest`] naming the live run set, and only **after** that swap
//! succeeds are superseded run files unlinked (they queue in
//! `pending_deletes` until then). A crash at any IO point therefore
//! leaves the last published manifest and every file it names intact;
//! [`RunStore::open`] recovers exactly that state, quarantines anything
//! corrupt into a typed ledger, and garbage-collects orphans.
//!
//! The engine never panics on IO failure: the first spill or manifest
//! error latches into [`RunStore::io_error`] and the store degrades to
//! memory-only (no further writes, no deletions of still-referenced
//! files) while every counter and query keeps its exact semantics —
//! callers inspect the latched error at the end and surface it as an
//! exit code.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dnsnoise_dns::{Name, Record, RrKey};

use super::crc::crc32;
use super::error::StoreError;
use super::index::DEFAULT_EPSILON;
use super::io;
use super::keys::{self, CompositeKey};
use super::manifest::{Manifest, RunFileMeta};
use super::recovery::{self, RecoveryReport, QUARANTINE_LEDGER};
use super::run::Run;
use crate::rpdns::DailyNewRrs;

/// Tuning and placement knobs for a [`RunStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Memtable flush threshold, in keys.
    pub memtable_cap: usize,
    /// Size-tier growth factor and per-tier run budget.
    pub fanout: usize,
    /// Learned-index error bound.
    pub epsilon: u32,
    /// Directory to mirror run files into (`None` = memory only).
    pub spill: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { memtable_cap: 4096, fanout: 4, epsilon: DEFAULT_EPSILON, spill: None }
    }
}

impl StoreConfig {
    /// This configuration with runs mirrored under `dir`.
    pub fn with_spill(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill = Some(dir.into());
        self
    }
}

/// Counters describing the engine's internal shape, for benchmarks and
/// diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live sorted runs.
    pub runs: usize,
    /// Keys currently buffered in the memtable.
    pub memtable_keys: usize,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compaction merges performed.
    pub compactions: u64,
    /// Live runs indexed by a learned model (the rest use the classic
    /// fallback).
    pub learned_runs: usize,
}

/// The learned-index run store. See the module docs for the design; see
/// [`PdnsStore`](super::PdnsStore) for the API it shares with
/// [`RpDns`](crate::RpDns).
#[derive(Debug)]
pub struct RunStore {
    config: StoreConfig,
    memtable: BTreeMap<CompositeKey, u64>,
    runs: Vec<Run>,
    /// Spill-file metadata of each run in `runs`, when mirroring is on.
    run_files: Vec<Option<RunFileMeta>>,
    /// Superseded run files awaiting deletion; unlinked only after a
    /// manifest that no longer names them has been published.
    pending_deletes: Vec<PathBuf>,
    next_run_id: u64,
    /// Sequence of the last published manifest.
    manifest_seq: u64,
    /// Total `observe` calls folded in — the durable-prefix marker the
    /// manifest records for crash replay.
    observed: u64,
    per_day: Vec<DailyNewRrs>,
    storage_bytes: u64,
    flushes: u64,
    compactions: u64,
    /// First IO failure, latched; the store is memory-only from then on.
    io_error: Option<StoreError>,
    /// What [`RunStore::open`] found, for diagnostics.
    recovery: Option<RecoveryReport>,
}

impl RunStore {
    /// An empty store with default tuning and no spill directory.
    pub fn new() -> RunStore {
        RunStore::with_config(StoreConfig::default())
    }

    /// An empty store with explicit tuning. Creates the spill directory
    /// eagerly; a failure there latches as the store's IO error (the
    /// store still works, memory-only) rather than panicking.
    pub fn with_config(config: StoreConfig) -> RunStore {
        let mut store = RunStore {
            config,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            run_files: Vec::new(),
            pending_deletes: Vec::new(),
            next_run_id: 0,
            manifest_seq: 0,
            observed: 0,
            per_day: Vec::new(),
            storage_bytes: 0,
            flushes: 0,
            compactions: 0,
            io_error: None,
            recovery: None,
        };
        if let Some(dir) = store.config.spill.clone() {
            if let Err(e) = io::create_dir_all(&dir) {
                store.io_error = Some(e);
            }
        }
        store
    }

    /// Opens (or creates) the store persisted under `dir`, recovering
    /// the state of the last published manifest.
    ///
    /// Recovery verifies every manifest-listed run end to end (length,
    /// whole-file CRC, section checksums, layout, key order); corrupt
    /// runs are renamed to `*.quarantined`, recorded in the typed
    /// ledger ([`RunStore::recovery`]) and appended to `quarantine.log`,
    /// and the store continues without them. Files the manifest does not
    /// name — `.tmp` staging leftovers, runs superseded just before a
    /// crash — are garbage-collected. `config.spill` is overridden to
    /// `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the manifest itself fails its
    /// checksum (run `fsck` for diagnosis), [`StoreError::ConfigMismatch`]
    /// when `config` tuning contradicts the manifest's echo, or an IO
    /// error reading the directory.
    pub fn open(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<RunStore, StoreError> {
        let dir = dir.into();
        io::create_dir_all(&dir)?;
        let scan = recovery::scan(&dir, false)?;
        let config = StoreConfig { spill: Some(dir.clone()), ..config };
        let mut store = RunStore::with_config(config);
        if let Some(e) = store.io_error.clone() {
            return Err(e);
        }
        if let Some(m) = &scan.manifest {
            let echo = [
                ("memtable_cap", m.memtable_cap, store.config.memtable_cap as u64),
                ("fanout", m.fanout, store.config.fanout as u64),
                ("epsilon", u64::from(m.epsilon), u64::from(store.config.epsilon)),
            ];
            let diffs: Vec<String> = echo
                .iter()
                .filter(|(_, disk, ours)| disk != ours)
                .map(|(field, disk, ours)| format!("{field}: manifest={disk} config={ours}"))
                .collect();
            if !diffs.is_empty() {
                return Err(StoreError::ConfigMismatch { detail: diffs.join(", ") });
            }
            store.next_run_id = m.next_run_id;
            store.manifest_seq = m.seq;
            store.observed = m.observed;
            store.storage_bytes = m.storage_bytes;
            store.flushes = m.flushes;
            store.compactions = m.compactions;
            store.per_day = m.per_day.clone();
        }
        for scanned in scan.live {
            store.runs.push(scanned.run);
            store.run_files.push(Some(scanned.meta));
        }
        // Corrupt runs keep their bytes under a quarantine name for
        // diagnosis; orphans were never durable and are deleted. Both
        // are best-effort — a failure just leaves work for the next
        // open or fsck.
        for path in &scan.corrupt_paths {
            let _ = io::quarantine_file(path);
        }
        for path in &scan.orphan_paths {
            let _ = io::remove_file(path);
        }
        if !scan.report.is_clean() {
            recovery::append_ledger(&dir, &scan.report);
        }
        store.recovery = Some(scan.report);
        Ok(store)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Internal-shape counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            runs: self.runs.len(),
            memtable_keys: self.memtable.len(),
            flushes: self.flushes,
            compactions: self.compactions,
            learned_runs: self.runs.iter().filter(|r| r.index_is_learned()).count(),
        }
    }

    /// The first IO failure this store hit, if any. Once set, the store
    /// has stopped writing (memory-only degradation); in-memory results
    /// remain exact.
    pub fn io_error(&self) -> Option<&StoreError> {
        self.io_error.as_ref()
    }

    /// Total [`observe`](RunStore::observe) calls folded into this
    /// store. After [`open`](RunStore::open), the durable prefix length:
    /// replaying an event log from this offset reproduces the
    /// pre-crash store.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// What recovery found when this store was [`open`](RunStore::open)ed
    /// (`None` for stores built fresh).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Number of distinct records stored.
    pub fn len(&self) -> usize {
        self.memtable.len() + self.runs.iter().map(Run::len).sum::<usize>()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The daily new/repeated counters (index = day).
    pub fn per_day(&self) -> &[DailyNewRrs] {
        &self.per_day
    }

    /// Modelled storage footprint in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bytes
    }

    /// The live runs, oldest first — checkpoint serialisation input.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The buffered memtable entries in key order — checkpoint
    /// serialisation input.
    pub fn memtable_entries(&self) -> impl Iterator<Item = (&CompositeKey, u64)> + '_ {
        self.memtable.iter().map(|(k, &day)| (k, day))
    }

    /// Rebuilds a store from checkpointed parts: the exact memtable,
    /// run layout, and counters of the checkpointed store, so its
    /// subsequent evolution (flushes, compaction decisions, stats) is
    /// identical to the store that never stopped. With a spill
    /// directory, stale files from the interrupted process are swept
    /// and the restored layout is spilled and published fresh.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        config: StoreConfig,
        memtable: Vec<(CompositeKey, u64)>,
        runs: Vec<Run>,
        per_day: Vec<DailyNewRrs>,
        storage_bytes: u64,
        flushes: u64,
        compactions: u64,
    ) -> RunStore {
        let mut store = RunStore::with_config(config);
        if let Some(dir) = store.config.spill.clone() {
            // The interrupted process's spill state is superseded by the
            // checkpoint: sweep every artifact and republish below.
            if let Ok(entries) = std::fs::read_dir(&dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if name != QUARANTINE_LEDGER && entry.path().is_file() {
                        let _ = io::remove_file(&entry.path());
                    }
                }
            }
        }
        store.memtable = memtable.into_iter().collect();
        store.per_day = per_day;
        store.storage_bytes = storage_bytes;
        store.flushes = flushes;
        store.compactions = compactions;
        store.observed = store.per_day.iter().map(|d| d.new_records + d.repeated_records).sum();
        for run in runs {
            store.push_run(run);
        }
        store.persist();
        store
    }

    fn ensure_day(&mut self, day: u64) {
        let needed = day as usize + 1;
        if self.per_day.len() < needed {
            self.per_day.resize(needed, DailyNewRrs::default());
        }
    }

    fn get_encoded(&self, key: &CompositeKey) -> Option<u64> {
        // Every key lives in exactly one place (observe dedups before
        // inserting), so probe order is immaterial; memtable first is
        // simply cheapest. After `optimize` the memtable is empty and
        // lookups go straight to the single run.
        if !self.memtable.is_empty() {
            if let Some(&day) = self.memtable.get(key) {
                return Some(day);
            }
        }
        self.runs.iter().find_map(|run| run.get(key))
    }

    /// Records one observation of `record` on `day`. Returns `true` when
    /// the record is new to the store.
    pub fn observe(&mut self, record: &Record, day: u64) -> bool {
        self.observed += 1;
        self.ensure_day(day);
        let key = keys::encode_key(&record.name, record.qtype, &record.rdata);
        if self.get_encoded(&key).is_some() {
            self.per_day[day as usize].repeated_records += 1;
            return false;
        }
        self.storage_bytes += RrKey::storage_bytes_of(&record.name, &record.rdata) as u64;
        self.per_day[day as usize].new_records += 1;
        self.memtable.insert(key, day);
        if self.memtable.len() >= self.config.memtable_cap {
            self.flush();
        }
        true
    }

    /// The day `key` was first seen, if stored.
    pub fn first_seen(&self, key: &RrKey) -> Option<u64> {
        self.get_encoded(&keys::encode_key(&key.name, key.qtype, &key.rdata))
    }

    /// Flushes the memtable into a new immutable run, compacts, and
    /// publishes the resulting live set.
    fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(CompositeKey, u64)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        let run = Run::build(entries, self.config.epsilon);
        self.flushes += 1;
        self.push_run(run);
        self.compact();
        self.persist();
    }

    fn push_run(&mut self, run: Run) {
        let meta = self.spill_run(&run);
        self.runs.push(run);
        self.run_files.push(meta);
    }

    /// Durably writes a run image via the atomic protocol. An error
    /// latches and the store degrades to memory-only.
    fn spill_run(&mut self, run: &Run) -> Option<RunFileMeta> {
        let dir = self.config.spill.as_ref()?.clone();
        if self.io_error.is_some() {
            return None;
        }
        let name = format!("run-{:08}.bin", self.next_run_id);
        self.next_run_id += 1;
        let bytes = run.to_bytes();
        let meta = RunFileMeta { name: name.clone(), len: bytes.len() as u64, crc: crc32(&bytes) };
        match io::atomic_write(&dir, &name, &bytes) {
            Ok(()) => Some(meta),
            Err(e) => {
                self.io_error = Some(e);
                None
            }
        }
    }

    /// Atomically publishes the manifest naming the current live run
    /// set, then — and only then — unlinks superseded files queued in
    /// `pending_deletes`. A publish failure latches; the queued files
    /// are still named by the last durable manifest and must survive.
    fn persist(&mut self) {
        if self.io_error.is_some() {
            return;
        }
        let Some(dir) = self.config.spill.clone() else { return };
        let manifest = Manifest {
            seq: self.manifest_seq + 1,
            memtable_cap: self.config.memtable_cap as u64,
            fanout: self.config.fanout as u64,
            epsilon: self.config.epsilon,
            next_run_id: self.next_run_id,
            observed: self.observed,
            storage_bytes: self.storage_bytes,
            flushes: self.flushes,
            compactions: self.compactions,
            per_day: self.per_day.clone(),
            runs: self.run_files.iter().flatten().cloned().collect(),
        };
        match manifest.publish(&dir) {
            Ok(()) => {
                self.manifest_seq += 1;
                // Deletion is best-effort: a failure here strands the
                // file as an orphan the next open garbage-collects.
                for path in std::mem::take(&mut self.pending_deletes) {
                    let _ = io::remove_file(&path);
                }
            }
            Err(e) => self.io_error = Some(e),
        }
    }

    fn remove_runs(&mut self, indices: &[usize]) -> Vec<Run> {
        // Indices arrive ascending; remove back-to-front to keep them
        // valid, then restore first-added-first order. Files are not
        // unlinked here — they stay until a manifest without them is
        // durable (see `persist`).
        let mut removed = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            removed.push(self.runs.remove(i));
            if let Some(meta) = self.run_files.remove(i) {
                if let Some(dir) = &self.config.spill {
                    self.pending_deletes.push(dir.join(&meta.name));
                }
            }
        }
        removed.reverse();
        removed
    }

    /// The size tier of a run: the largest `t` with
    /// `len ≥ memtable_cap · fanoutᵗ`.
    fn tier_of(&self, len: usize) -> u32 {
        let cap = self.config.memtable_cap.max(1);
        let fanout = self.config.fanout.max(2);
        let mut t = 0u32;
        let mut bound = cap.saturating_mul(fanout);
        while len >= bound {
            t += 1;
            bound = bound.saturating_mul(fanout);
        }
        t
    }

    /// Deterministic size-tiered compaction: while any tier holds at
    /// least `fanout` runs, merge the lowest such tier entirely.
    fn compact(&mut self) {
        let fanout = self.config.fanout.max(2);
        loop {
            let tiers: Vec<u32> = self.runs.iter().map(|r| self.tier_of(r.len())).collect();
            let Some(&lowest) = tiers
                .iter()
                .filter(|&&t| tiers.iter().filter(|&&u| u == t).count() >= fanout)
                .min()
            else {
                return;
            };
            let victims: Vec<usize> = (0..tiers.len()).filter(|&i| tiers[i] == lowest).collect();
            let runs = self.remove_runs(&victims);
            let merged = merge_runs(runs, self.config.epsilon);
            self.compactions += 1;
            self.push_run(merged);
        }
    }

    /// Flushes pending writes and merges every run into a single one —
    /// the read-optimised shape used before sustained lookup phases.
    pub fn optimize(&mut self) {
        self.flush();
        if self.runs.len() > 1 {
            let all: Vec<usize> = (0..self.runs.len()).collect();
            let runs = self.remove_runs(&all);
            let merged = merge_runs(runs, self.config.epsilon);
            self.compactions += 1;
            self.push_run(merged);
            self.persist();
        }
    }

    /// Every stored `(key, first-seen day)` with `name` in `zone`'s
    /// subtree (the zone itself included), in canonical composite-key
    /// order.
    pub fn scan_prefix(&self, zone: &Name) -> Vec<(RrKey, u64)> {
        let prefix = keys::encode_name(zone);
        // Borrowed columns only: hits reference the memtable's keys and
        // the runs' byte buffers, so a scan clones nothing until the
        // final decode.
        let mut hits: Vec<(&[u8], u16, &[u8], u64)> = Vec::new();
        for (key, &day) in self.memtable.range((prefix.clone(), 0, Vec::new())..) {
            if !key.0.starts_with(&prefix) {
                break;
            }
            hits.push((key.0.as_slice(), key.1, key.2.as_slice(), day));
        }
        for run in &self.runs {
            let (lo, hi) = run.prefix_range(&prefix);
            for i in lo..hi {
                hits.push((run.name_at(i), run.qtype_at(i), run.rdata_at(i), run.day_at(i)));
            }
        }
        // Sources are individually sorted and mutually disjoint; one
        // sort yields the canonical global order.
        hits.sort_unstable();
        hits.iter()
            .map(|&(name, qtype, rdata, day)| {
                // Scan sources are encoder output (memtable) or
                // checksum-validated runs; a decode failure here is a
                // logic bug, not reachable from stored bytes.
                (keys::decode_key_parts(name, qtype, rdata).expect("validated key decodes"), day)
            })
            .collect()
    }

    /// Every stored entry in canonical order, drained for rebuilds.
    fn drain_entries(&mut self) -> Vec<(CompositeKey, u64)> {
        let mut entries: Vec<(CompositeKey, u64)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        let old: Vec<usize> = (0..self.runs.len()).collect();
        for run in self.remove_runs(&old) {
            entries.extend(run.entries());
        }
        entries.sort_unstable();
        entries
    }

    /// Merges another run store into this one with the exact
    /// earliest-first-seen-wins semantics of
    /// [`RpDns::merge`](crate::RpDns::merge): per-day counters add, a
    /// record present on both sides keeps its earliest day, its later
    /// sighting is re-classified as repeated on the later day, and the
    /// duplicate's storage is refunded. The merged store is rebuilt as a
    /// single run and published. `other` is consumed; if it owned a
    /// spill directory of its own, that directory is abandoned as-is
    /// (nothing there is deleted, so no crash window loses data).
    pub fn merge(&mut self, other: RunStore) {
        let mut other = other;
        self.observed += other.observed;
        if self.per_day.len() < other.per_day.len() {
            self.per_day.resize(other.per_day.len(), DailyNewRrs::default());
        }
        for (slot, theirs) in self.per_day.iter_mut().zip(&other.per_day) {
            slot.new_records += theirs.new_records;
            slot.repeated_records += theirs.repeated_records;
        }
        self.storage_bytes += other.storage_bytes;

        let mine = self.drain_entries();
        let theirs = other.drain_entries();
        let mut merged: Vec<(CompositeKey, u64)> = Vec::with_capacity(mine.len() + theirs.len());
        let mut a = mine.into_iter().peekable();
        let mut b = theirs.into_iter().peekable();
        loop {
            let take_from_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.0 == y.0 {
                        // Cross-store duplicate: earliest first-seen
                        // wins, the later sighting becomes a repeat and
                        // its storage is refunded.
                        let (key, day_a) = a.next().expect("peeked");
                        let (_, day_b) = b.next().expect("peeked");
                        let dup_day = day_a.max(day_b);
                        let d = &mut self.per_day[dup_day as usize];
                        d.new_records -= 1;
                        d.repeated_records += 1;
                        let dup = keys::decode_key(&key).expect("validated key decodes");
                        self.storage_bytes -= dup.storage_bytes() as u64;
                        merged.push((key, day_a.min(day_b)));
                        continue;
                    }
                    x.0 < y.0
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_from_a { a.next() } else { b.next() };
            merged.push(next.expect("peeked side is non-empty"));
        }
        if !merged.is_empty() {
            let run = build_run(merged, self.config.epsilon);
            self.compactions += 1;
            self.push_run(run);
        }
        self.persist();
    }

    /// An empty store with this store's tuning, for per-shard
    /// collection. The fork never spills — shard-local state is merged
    /// back into the (spilling) parent, so only the parent owns files.
    pub fn fork(&self) -> RunStore {
        RunStore::with_config(StoreConfig { spill: None, ..self.config.clone() })
    }
}

impl Default for RunStore {
    fn default() -> Self {
        RunStore::new()
    }
}

/// Builds one run from sorted distinct entries (a free function so the
/// cast-free body of [`RunStore::merge`] stays within the merge-cast
/// lint's remit while the columnar packing lives elsewhere).
fn build_run(entries: Vec<(CompositeKey, u64)>, epsilon: u32) -> Run {
    Run::build(entries, epsilon)
}

/// K-way merge of same-store runs into one. Keys are disjoint across a
/// single store's runs (observe dedups against the whole store before
/// inserting), so this is a pure interleave; the debug assertion in
/// [`Run::build`] would catch any violation.
fn merge_runs(runs: Vec<Run>, epsilon: u32) -> Run {
    let mut entries: Vec<(CompositeKey, u64)> = Vec::with_capacity(runs.iter().map(Run::len).sum());
    for run in &runs {
        entries.extend(run.entries());
    }
    entries.sort_unstable();
    build_run(entries, epsilon)
}

#[cfg(test)]
mod tests {
    use super::super::manifest::MANIFEST_NAME;
    use super::*;
    use dnsnoise_dns::{QType, RData, Ttl};
    use std::net::Ipv4Addr;

    fn rr(name: &str, ip: u8) -> Record {
        Record::new(
            name.parse().unwrap(),
            QType::A,
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, ip)),
        )
    }

    fn tiny_config() -> StoreConfig {
        StoreConfig { memtable_cap: 8, fanout: 2, ..StoreConfig::default() }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dnsnoise-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run_files(dir: &std::path::Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                let name = p.file_name().unwrap().to_string_lossy();
                name.starts_with("run-") && name.ends_with(".bin")
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn observe_dedups_across_memtable_and_runs() {
        let mut store = RunStore::with_config(tiny_config());
        for i in 0..100u8 {
            assert!(store.observe(&rr(&format!("h{i}.example"), i), 0));
        }
        assert!(store.stats().runs > 0, "tiny cap must have flushed");
        for i in 0..100u8 {
            assert!(!store.observe(&rr(&format!("h{i}.example"), i), 1), "repeat {i}");
        }
        assert_eq!(store.len(), 100);
        assert_eq!(store.observed(), 200);
        assert_eq!(store.per_day()[0].new_records, 100);
        assert_eq!(store.per_day()[1].repeated_records, 100);
    }

    #[test]
    fn compaction_is_driven_by_counts_alone() {
        let mut a = RunStore::with_config(tiny_config());
        let mut b = RunStore::with_config(tiny_config());
        for i in 0..300u16 {
            let r = rr(&format!("c{i}.example"), (i % 251) as u8);
            a.observe(&r, 0);
            b.observe(&r, 0);
        }
        assert_eq!(a.stats(), b.stats(), "same inputs, same shape");
        assert!(a.stats().compactions > 0, "tiny tiers must have compacted");
        // Tiered layout: strictly fewer runs than flushes.
        assert!(a.stats().runs < a.stats().flushes as usize);
    }

    #[test]
    fn optimize_collapses_to_one_run_and_keeps_answers() {
        let mut store = RunStore::with_config(tiny_config());
        for i in 0..200u8 {
            store.observe(&rr(&format!("o{i}.example"), i), u64::from(i % 5));
        }
        let before: Vec<_> = store.scan_prefix(&Name::root());
        store.optimize();
        assert_eq!(store.stats().runs, 1);
        assert_eq!(store.stats().memtable_keys, 0);
        assert_eq!(store.scan_prefix(&Name::root()), before);
    }

    #[test]
    fn spill_mirrors_exactly_the_live_runs() {
        let dir = tmp_dir("spill");
        let mut store = RunStore::with_config(tiny_config().with_spill(&dir));
        for i in 0..200u8 {
            store.observe(&rr(&format!("s{i}.example"), i), 0);
        }
        store.optimize();
        assert_eq!(store.io_error(), None);
        let files = run_files(&dir);
        assert_eq!(files.len(), store.stats().runs, "one run file per live run");
        assert!(dir.join(MANIFEST_NAME).exists(), "manifest published");
        // The spilled image round-trips into the identical run.
        let bytes = std::fs::read(&files[0]).unwrap();
        let reloaded = Run::from_bytes(&bytes, store.config().epsilon).unwrap();
        assert_eq!(reloaded.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_recovers_exactly_what_was_published() {
        let dir = tmp_dir("reopen");
        let mut store = RunStore::with_config(tiny_config().with_spill(&dir));
        for i in 0..150u8 {
            store.observe(&rr(&format!("p{i}.example"), i), u64::from(i % 3));
        }
        // No explicit optimize: reopen mid-shape, memtable remainder
        // (not yet flushed, so not durable) excluded from expectations.
        let durable = store.len() - store.stats().memtable_keys;
        let stats = store.stats();
        drop(store);

        let back = RunStore::open(&dir, tiny_config()).expect("clean open");
        assert!(back.recovery().expect("recovery report ran").is_clean());
        assert_eq!(back.len(), durable);
        assert_eq!(back.stats().runs, stats.runs);
        assert_eq!(back.stats().flushes, stats.flushes);
        assert_eq!(back.stats().compactions, stats.compactions);
        assert!(back.observed() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_quarantines_a_corrupt_run_and_continues() {
        let dir = tmp_dir("quarantine");
        let mut store = RunStore::with_config(tiny_config().with_spill(&dir));
        for i in 0..100u8 {
            store.observe(&rr(&format!("q{i}.example"), i), 0);
        }
        store.optimize();
        drop(store);
        let files = run_files(&dir);
        let victim = files[0].clone();
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();

        let back = RunStore::open(&dir, tiny_config()).expect("lossy open succeeds");
        let report = back.recovery().unwrap();
        assert_eq!(report.problems(), 1);
        assert_eq!(report.bad_checksum.files, 1);
        assert!(report.conserves(), "{}", report.conservation_line());
        assert_eq!(back.len(), 0, "the only run was quarantined");
        assert!(!victim.exists(), "corrupt file renamed away");
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".quarantined"))
            .count();
        assert_eq!(quarantined, 1, "bytes preserved under a quarantine name");
        assert!(dir.join(QUARANTINE_LEDGER).exists(), "ledger written");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_mismatched_tuning() {
        let dir = tmp_dir("mismatch");
        let mut store = RunStore::with_config(tiny_config().with_spill(&dir));
        for i in 0..50u8 {
            store.observe(&rr(&format!("m{i}.example"), i), 0);
        }
        drop(store);
        let other = StoreConfig { memtable_cap: 16, fanout: 2, ..StoreConfig::default() };
        assert!(matches!(RunStore::open(&dir, other), Err(StoreError::ConfigMismatch { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_parts_reproduces_the_exact_shape() {
        let mut store = RunStore::with_config(tiny_config());
        for i in 0..120u8 {
            store.observe(&rr(&format!("fp{i}.example"), i), u64::from(i % 2));
        }
        let memtable: Vec<(CompositeKey, u64)> =
            store.memtable_entries().map(|(k, d)| (k.clone(), d)).collect();
        let runs = store.runs().to_vec();
        let mut restored = RunStore::from_parts(
            tiny_config(),
            memtable,
            runs,
            store.per_day().to_vec(),
            store.storage_bytes(),
            store.stats().flushes,
            store.stats().compactions,
        );
        assert_eq!(restored.stats(), store.stats());
        assert_eq!(restored.len(), store.len());
        assert_eq!(restored.observed(), store.observed());
        // Continued evolution is identical: same flush and compaction
        // decisions, same layout, same answers.
        for i in 0..80u8 {
            let r = rr(&format!("cont{i}.example"), i);
            store.observe(&r, 2);
            restored.observe(&r, 2);
        }
        assert_eq!(restored.stats(), store.stats());
        assert_eq!(restored.per_day(), store.per_day());
        assert_eq!(restored.scan_prefix(&Name::root()), store.scan_prefix(&Name::root()));
    }
}
