//! Immutable sorted runs in a columnar byte-buffer layout.
//!
//! A run holds `n` deduplicated records sorted by composite key, split
//! into four columns: the name byte-buffer (reverse-label encodings,
//! offset-indexed), the qtype column, the rdata byte-buffer
//! (offset-indexed) and the first-seen-day column. Runs are built once —
//! from a flushed memtable or a compaction merge — and never mutated;
//! point lookups go through the per-run hybrid index
//! ([`RunIndex`](super::index::RunIndex)), range scans binary-search the
//! name column directly.
//!
//! [`Run::to_bytes`]/[`Run::from_bytes`] define the on-disk image the
//! disk backend spills: a fixed header plus the raw columns. The index
//! is *not* serialised — it is a pure function of the sorted keys and is
//! rebuilt on load, so a run file can never carry a stale or corrupt
//! model.

use dnsnoise_dns::RrKey;

use super::index::{feature, RunIndex};
use super::keys::{self, CompositeKey};

/// Magic + version tag leading every serialised run.
const RUN_MAGIC: &[u8; 8] = b"dnrun01\n";

/// One immutable sorted run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// `n + 1` offsets into `name_bytes`.
    name_offsets: Vec<u32>,
    /// Concatenated reverse-label name encodings.
    name_bytes: Vec<u8>,
    /// RR type codes, one per entry.
    qtypes: Vec<u16>,
    /// `n + 1` offsets into `rdata_bytes`.
    rdata_offsets: Vec<u32>,
    /// Concatenated rdata encodings.
    rdata_bytes: Vec<u8>,
    /// First-seen day, one per entry.
    days: Vec<u64>,
    /// The hybrid learned/classic index over the name column.
    index: RunIndex,
}

impl Run {
    /// Builds a run from entries already in composite-key order with no
    /// duplicate keys.
    pub fn build(entries: Vec<(CompositeKey, u64)>, epsilon: u32) -> Run {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries sorted and distinct");
        let n = entries.len();
        let mut name_offsets = Vec::with_capacity(n + 1);
        let mut name_bytes = Vec::new();
        let mut qtypes = Vec::with_capacity(n);
        let mut rdata_offsets = Vec::with_capacity(n + 1);
        let mut rdata_bytes = Vec::new();
        let mut days = Vec::with_capacity(n);
        name_offsets.push(0);
        rdata_offsets.push(0);
        for ((name, qtype, rdata), day) in entries {
            name_bytes.extend_from_slice(&name);
            name_offsets.push(u32::try_from(name_bytes.len()).expect("name column < 4 GiB"));
            qtypes.push(qtype);
            rdata_bytes.extend_from_slice(&rdata);
            rdata_offsets.push(u32::try_from(rdata_bytes.len()).expect("rdata column < 4 GiB"));
            days.push(day);
        }
        let names: Vec<&[u8]> = (0..n)
            .map(|i| &name_bytes[name_offsets[i] as usize..name_offsets[i + 1] as usize])
            .collect();
        let index = RunIndex::build(&names, epsilon);
        Run { name_offsets, name_bytes, qtypes, rdata_offsets, rdata_bytes, days, index }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.qtypes.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.qtypes.is_empty()
    }

    /// Whether the learned model (vs the classic fallback) indexes this
    /// run.
    pub fn index_is_learned(&self) -> bool {
        self.index.is_learned()
    }

    /// The encoded name of entry `i`.
    pub fn name_at(&self, i: usize) -> &[u8] {
        &self.name_bytes[self.name_offsets[i] as usize..self.name_offsets[i + 1] as usize]
    }

    /// The RR type code of entry `i`.
    pub fn qtype_at(&self, i: usize) -> u16 {
        self.qtypes[i]
    }

    /// The encoded rdata of entry `i`.
    pub fn rdata_at(&self, i: usize) -> &[u8] {
        &self.rdata_bytes[self.rdata_offsets[i] as usize..self.rdata_offsets[i + 1] as usize]
    }

    /// The first-seen day of entry `i`.
    pub fn day_at(&self, i: usize) -> u64 {
        self.days[i]
    }

    /// Composite-key comparison of entry `i` against a probe key,
    /// column by column — no per-entry allocation.
    fn cmp_entry(&self, i: usize, key: &CompositeKey) -> std::cmp::Ordering {
        self.name_at(i)
            .cmp(key.0.as_slice())
            .then_with(|| self.qtypes[i].cmp(&key.1))
            .then_with(|| self.rdata_at(i).cmp(key.2.as_slice()))
    }

    /// Point lookup: the first-seen day of `key`, if stored. Uses the
    /// hybrid index for a bounded candidate window, then exact binary
    /// search — never a miss for a stored key, whatever the index kind.
    pub fn get(&self, key: &CompositeKey) -> Option<u64> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let x = feature(&key.0, self.index.lcp());
        let (win_lo, win_hi) = self.index.window(x, n);
        // The window is promised to contain the *first* entry of feature
        // group `x` (when the group exists), so a stored key can never
        // sort before it — binary-search the window by full composite
        // comparison, and gallop past `win_hi` only when a fat group (a
        // single owner name with many RDATAs) overflows the window.
        let mut pos = win_lo
            + partition_point_idx(win_hi - win_lo, |i| {
                self.cmp_entry(win_lo + i, key) == std::cmp::Ordering::Less
            });
        if pos == win_hi && win_hi < n {
            pos += gallop_point(n - win_hi, |i| {
                self.cmp_entry(win_hi + i, key) == std::cmp::Ordering::Less
            });
        }
        (pos < n && self.cmp_entry(pos, key) == std::cmp::Ordering::Equal).then(|| self.days[pos])
    }

    /// The contiguous entry range `[lo, hi)` of names starting with
    /// `prefix` (a zone's subtree).
    pub fn prefix_range(&self, prefix: &[u8]) -> (usize, usize) {
        let n = self.len();
        let lo = partition_point_idx(n, |i| self.name_at(i) < prefix);
        let hi = match keys::prefix_upper_bound(prefix) {
            Some(upper) => partition_point_idx(n, |i| self.name_at(i) < upper.as_slice()),
            None => n,
        };
        (lo, hi)
    }

    /// Decodes entry `i` into its owned composite key.
    pub fn key_at(&self, i: usize) -> CompositeKey {
        (self.name_at(i).to_vec(), self.qtypes[i], self.rdata_at(i).to_vec())
    }

    /// Decodes entry `i` into an [`RrKey`].
    pub fn rr_key_at(&self, i: usize) -> RrKey {
        keys::decode_key(&self.key_at(i))
    }

    /// Iterates every entry as `(owned composite key, day)` in key order.
    pub fn entries(&self) -> impl Iterator<Item = (CompositeKey, u64)> + '_ {
        (0..self.len()).map(|i| (self.key_at(i), self.days[i]))
    }

    /// Serialises the run into its on-disk image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(RUN_MAGIC);
        let push_u64 =
            |out: &mut Vec<u8>, v: usize| out.extend_from_slice(&(v as u64).to_be_bytes());
        push_u64(&mut out, self.len());
        push_u64(&mut out, self.name_bytes.len());
        push_u64(&mut out, self.rdata_bytes.len());
        for off in &self.name_offsets {
            out.extend_from_slice(&off.to_be_bytes());
        }
        out.extend_from_slice(&self.name_bytes);
        for qt in &self.qtypes {
            out.extend_from_slice(&qt.to_be_bytes());
        }
        for off in &self.rdata_offsets {
            out.extend_from_slice(&off.to_be_bytes());
        }
        out.extend_from_slice(&self.rdata_bytes);
        for day in &self.days {
            out.extend_from_slice(&day.to_be_bytes());
        }
        out
    }

    /// Deserialises a [`Run::to_bytes`] image, rebuilding the index.
    ///
    /// # Errors
    ///
    /// Returns a message when the header or lengths do not describe a
    /// well-formed run.
    pub fn from_bytes(bytes: &[u8], epsilon: u32) -> Result<Run, String> {
        let rest = bytes.strip_prefix(RUN_MAGIC.as_slice()).ok_or("bad run magic")?;
        if rest.len() < 24 {
            return Err("truncated run header".to_string());
        }
        let read_u64 =
            |chunk: &[u8]| u64::from_be_bytes(chunk.try_into().expect("8-byte chunk")) as usize;
        let n = read_u64(&rest[0..8]);
        let name_len = read_u64(&rest[8..16]);
        let rdata_len = read_u64(&rest[16..24]);
        let body = &rest[24..];
        let expect = (n + 1) * 4 + name_len + n * 2 + (n + 1) * 4 + rdata_len + n * 8;
        if body.len() != expect {
            return Err(format!("run body is {} bytes, expected {expect}", body.len()));
        }
        let mut at = 0usize;
        let mut take = |len: usize| {
            let s = &body[at..at + len];
            at += len;
            s
        };
        let name_offsets: Vec<u32> = take((n + 1) * 4)
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let name_bytes = take(name_len).to_vec();
        let qtypes: Vec<u16> = take(n * 2)
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes(c.try_into().expect("2-byte chunk")))
            .collect();
        let rdata_offsets: Vec<u32> = take((n + 1) * 4)
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let rdata_bytes = take(rdata_len).to_vec();
        let days: Vec<u64> = take(n * 8)
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        if name_offsets.first() != Some(&0)
            || name_offsets.last().copied() != u32::try_from(name_len).ok()
            || rdata_offsets.first() != Some(&0)
            || rdata_offsets.last().copied() != u32::try_from(rdata_len).ok()
            || name_offsets.windows(2).any(|w| w[0] > w[1])
            || rdata_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("inconsistent run offsets".to_string());
        }
        let names: Vec<&[u8]> = (0..n)
            .map(|i| &name_bytes[name_offsets[i] as usize..name_offsets[i + 1] as usize])
            .collect();
        let index = RunIndex::build(&names, epsilon);
        Ok(Run { name_offsets, name_bytes, qtypes, rdata_offsets, rdata_bytes, days, index })
    }
}

/// `partition_point` over `0..n` by index predicate (the columns are not
/// slices of one element type, so the stdlib slice helper does not
/// apply).
fn partition_point_idx(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// [`partition_point_idx`] by exponential search: doubles a probe step
/// from the front until the predicate flips, then binary-searches the
/// last gap. `O(log k)` for an answer at position `k`, independent of
/// `n` — the right shape when the answer is expected near the start.
fn gallop_point(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    if n == 0 || !pred(0) {
        return 0;
    }
    let mut step = 1usize;
    while step < n && pred(step) {
        step *= 2;
    }
    let lo = step / 2 + 1;
    let hi = step.min(n);
    lo + partition_point_idx(hi - lo, |i| pred(lo + i))
}

#[cfg(test)]
mod tests {
    use super::super::index::DEFAULT_EPSILON;
    use super::super::keys::encode_key;
    use super::*;
    use dnsnoise_dns::{Name, QType, RData};
    use std::net::Ipv4Addr;

    fn entries(n: u32) -> Vec<(CompositeKey, u64)> {
        let mut out: Vec<(CompositeKey, u64)> = (0..n)
            .map(|i| {
                let name: Name = format!("d{i:06}.zone{}.example", i % 7).parse().unwrap();
                let rdata = RData::A(Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8));
                (encode_key(&name, QType::A, &rdata), u64::from(i % 13))
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn get_finds_every_stored_key_and_rejects_absent_ones() {
        let e = entries(3000);
        let run = Run::build(e.clone(), DEFAULT_EPSILON);
        for (key, day) in &e {
            assert_eq!(run.get(key), Some(*day));
        }
        let absent = encode_key(
            &"nope.zone9.example".parse().unwrap(),
            QType::A,
            &RData::A(Ipv4Addr::LOCALHOST),
        );
        assert_eq!(run.get(&absent), None);
    }

    #[test]
    fn prefix_range_is_exactly_the_subtree() {
        let e = entries(500);
        let run = Run::build(e, DEFAULT_EPSILON);
        let zone: Name = "zone3.example".parse().unwrap();
        let prefix = super::super::keys::encode_name(&zone);
        let (lo, hi) = run.prefix_range(&prefix);
        assert!(lo < hi);
        for i in 0..run.len() {
            let inside = lo <= i && i < hi;
            assert_eq!(run.rr_key_at(i).name.is_subdomain_of(&zone), inside, "entry {i}");
        }
    }

    #[test]
    fn serialisation_roundtrips_bit_exactly() {
        let run = Run::build(entries(700), DEFAULT_EPSILON);
        let bytes = run.to_bytes();
        let back = Run::from_bytes(&bytes, DEFAULT_EPSILON).expect("well-formed image");
        assert_eq!(back, run, "columns and rebuilt index match");
        assert_eq!(back.to_bytes(), bytes, "re-serialisation is bit-identical");
        assert!(Run::from_bytes(&bytes[..40], DEFAULT_EPSILON).is_err());
        assert!(Run::from_bytes(b"junk", DEFAULT_EPSILON).is_err());
    }

    #[test]
    fn empty_run_is_well_behaved() {
        let run = Run::build(Vec::new(), DEFAULT_EPSILON);
        assert!(run.is_empty());
        let probe =
            encode_key(&"x.example".parse().unwrap(), QType::A, &RData::A(Ipv4Addr::LOCALHOST));
        assert_eq!(run.get(&probe), None);
        assert_eq!(run.prefix_range(b"\0"), (0, 0));
        let back = Run::from_bytes(&run.to_bytes(), DEFAULT_EPSILON).unwrap();
        assert!(back.is_empty());
    }
}
