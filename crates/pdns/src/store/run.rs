//! Immutable sorted runs in a columnar byte-buffer layout.
//!
//! A run holds `n` deduplicated records sorted by composite key, split
//! into four columns: the name byte-buffer (reverse-label encodings,
//! offset-indexed), the qtype column, the rdata byte-buffer
//! (offset-indexed) and the first-seen-day column. Runs are built once —
//! from a flushed memtable or a compaction merge — and never mutated;
//! point lookups go through the per-run hybrid index
//! ([`RunIndex`](super::index::RunIndex)), range scans binary-search the
//! name column directly.
//!
//! [`Run::to_bytes`]/[`Run::from_bytes`] define the on-disk image the
//! disk backend spills (format v2): magic + version, a fixed header,
//! a CRC-32 per section (names, qtypes, rdata, days), the raw columns,
//! and a footer CRC-32 over the whole image. `from_bytes` is *total*: on
//! arbitrary, truncated, or bit-flipped input it returns an error — it
//! never panics and never trusts a forged header (all size arithmetic is
//! checked). The index is *not* serialised — it is a pure function of
//! the sorted keys and is rebuilt on load, so a run file can never carry
//! a stale or corrupt model.

use dnsnoise_dns::RrKey;

use super::crc::crc32;
use super::index::{feature, RunIndex};
use super::keys::{self, CompositeKey};

/// Magic + version tag leading every serialised run (format v2: the
/// checksummed layout; v1 `dnrun01` images predate the durability layer
/// and are rejected as unsupported).
const RUN_MAGIC: &[u8; 8] = b"dnrun02\n";

/// One immutable sorted run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// `n + 1` offsets into `name_bytes`.
    name_offsets: Vec<u32>,
    /// Concatenated reverse-label name encodings.
    name_bytes: Vec<u8>,
    /// RR type codes, one per entry.
    qtypes: Vec<u16>,
    /// `n + 1` offsets into `rdata_bytes`.
    rdata_offsets: Vec<u32>,
    /// Concatenated rdata encodings.
    rdata_bytes: Vec<u8>,
    /// First-seen day, one per entry.
    days: Vec<u64>,
    /// The hybrid learned/classic index over the name column.
    index: RunIndex,
}

impl Run {
    /// Builds a run from entries already in composite-key order with no
    /// duplicate keys.
    pub fn build(entries: Vec<(CompositeKey, u64)>, epsilon: u32) -> Run {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries sorted and distinct");
        let n = entries.len();
        let mut name_offsets = Vec::with_capacity(n + 1);
        let mut name_bytes = Vec::new();
        let mut qtypes = Vec::with_capacity(n);
        let mut rdata_offsets = Vec::with_capacity(n + 1);
        let mut rdata_bytes = Vec::new();
        let mut days = Vec::with_capacity(n);
        name_offsets.push(0);
        rdata_offsets.push(0);
        for ((name, qtype, rdata), day) in entries {
            name_bytes.extend_from_slice(&name);
            name_offsets.push(u32::try_from(name_bytes.len()).expect("name column < 4 GiB"));
            qtypes.push(qtype);
            rdata_bytes.extend_from_slice(&rdata);
            rdata_offsets.push(u32::try_from(rdata_bytes.len()).expect("rdata column < 4 GiB"));
            days.push(day);
        }
        let names: Vec<&[u8]> = (0..n).map(|i| column_at(&name_bytes, &name_offsets, i)).collect();
        let index = RunIndex::build(&names, epsilon);
        Run { name_offsets, name_bytes, qtypes, rdata_offsets, rdata_bytes, days, index }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.qtypes.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.qtypes.is_empty()
    }

    /// Whether the learned model (vs the classic fallback) indexes this
    /// run.
    pub fn index_is_learned(&self) -> bool {
        self.index.is_learned()
    }

    /// The encoded name of entry `i` (empty when `i` is out of range —
    /// offsets are construction-validated, so in-contract callers never
    /// hit the fallback).
    // lint:certify(no-panic)
    pub fn name_at(&self, i: usize) -> &[u8] {
        column_at(&self.name_bytes, &self.name_offsets, i)
    }

    /// The RR type code of entry `i` (0 when `i` is out of range).
    // lint:certify(no-panic)
    pub fn qtype_at(&self, i: usize) -> u16 {
        self.qtypes.get(i).copied().unwrap_or(0)
    }

    /// The encoded rdata of entry `i` (empty when `i` is out of range).
    // lint:certify(no-panic)
    pub fn rdata_at(&self, i: usize) -> &[u8] {
        column_at(&self.rdata_bytes, &self.rdata_offsets, i)
    }

    /// The first-seen day of entry `i` (0 when `i` is out of range).
    // lint:certify(no-panic)
    pub fn day_at(&self, i: usize) -> u64 {
        self.days.get(i).copied().unwrap_or(0)
    }

    /// Composite-key comparison of entry `i` against a probe key,
    /// column by column — no per-entry allocation.
    fn cmp_entry(&self, i: usize, key: &CompositeKey) -> std::cmp::Ordering {
        self.name_at(i)
            .cmp(key.0.as_slice())
            .then_with(|| self.qtype_at(i).cmp(&key.1))
            .then_with(|| self.rdata_at(i).cmp(key.2.as_slice()))
    }

    /// Composite-key comparison of entry `i` against entry `j`, used to
    /// validate the strict sort order of a deserialised image.
    fn cmp_entries(&self, i: usize, j: usize) -> std::cmp::Ordering {
        self.name_at(i)
            .cmp(self.name_at(j))
            .then_with(|| self.qtype_at(i).cmp(&self.qtype_at(j)))
            .then_with(|| self.rdata_at(i).cmp(self.rdata_at(j)))
    }

    /// Point lookup: the first-seen day of `key`, if stored. Uses the
    /// hybrid index for a bounded candidate window, then exact binary
    /// search — never a miss for a stored key, whatever the index kind.
    pub fn get(&self, key: &CompositeKey) -> Option<u64> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let x = feature(&key.0, self.index.lcp());
        let (win_lo, win_hi) = self.index.window(x, n);
        // The window is promised to contain the *first* entry of feature
        // group `x` (when the group exists), so a stored key can never
        // sort before it — binary-search the window by full composite
        // comparison, and gallop past `win_hi` only when a fat group (a
        // single owner name with many RDATAs) overflows the window.
        let mut pos = win_lo
            + partition_point_idx(win_hi - win_lo, |i| {
                self.cmp_entry(win_lo + i, key) == std::cmp::Ordering::Less
            });
        if pos == win_hi && win_hi < n {
            pos += gallop_point(n - win_hi, |i| {
                self.cmp_entry(win_hi + i, key) == std::cmp::Ordering::Less
            });
        }
        (pos < n && self.cmp_entry(pos, key) == std::cmp::Ordering::Equal).then(|| self.day_at(pos))
    }

    /// The contiguous entry range `[lo, hi)` of names starting with
    /// `prefix` (a zone's subtree).
    pub fn prefix_range(&self, prefix: &[u8]) -> (usize, usize) {
        let n = self.len();
        let lo = partition_point_idx(n, |i| self.name_at(i) < prefix);
        let hi = match keys::prefix_upper_bound(prefix) {
            Some(upper) => partition_point_idx(n, |i| self.name_at(i) < upper.as_slice()),
            None => n,
        };
        (lo, hi)
    }

    /// Decodes entry `i` into its owned composite key.
    pub fn key_at(&self, i: usize) -> CompositeKey {
        (self.name_at(i).to_vec(), self.qtype_at(i), self.rdata_at(i).to_vec())
    }

    /// Decodes entry `i` into an [`RrKey`]. `Err` reports a key the
    /// encoders cannot produce (possible only via a checksum collision
    /// or an upstream logic bug).
    // lint:certify(no-panic)
    pub fn rr_key_at(&self, i: usize) -> Result<RrKey, String> {
        keys::decode_key(&self.key_at(i))
    }

    /// Iterates every entry as `(owned composite key, day)` in key order.
    pub fn entries(&self) -> impl Iterator<Item = (CompositeKey, u64)> + '_ {
        (0..self.len()).map(|i| (self.key_at(i), self.day_at(i)))
    }

    /// The four section byte-images, in on-disk order: names (offsets +
    /// buffer), qtypes, rdata (offsets + buffer), days.
    fn section_bytes(&self) -> [Vec<u8>; 4] {
        let mut names = Vec::with_capacity(
            self.name_offsets.len().saturating_mul(4).saturating_add(self.name_bytes.len()),
        );
        for off in &self.name_offsets {
            names.extend_from_slice(&off.to_be_bytes());
        }
        names.extend_from_slice(&self.name_bytes);
        let mut qtypes = Vec::with_capacity(self.qtypes.len() * 2);
        for qt in &self.qtypes {
            qtypes.extend_from_slice(&qt.to_be_bytes());
        }
        let mut rdata = Vec::with_capacity(
            self.rdata_offsets.len().saturating_mul(4).saturating_add(self.rdata_bytes.len()),
        );
        for off in &self.rdata_offsets {
            rdata.extend_from_slice(&off.to_be_bytes());
        }
        rdata.extend_from_slice(&self.rdata_bytes);
        let mut days = Vec::with_capacity(self.days.len() * 8);
        for day in &self.days {
            days.extend_from_slice(&day.to_be_bytes());
        }
        [names, qtypes, rdata, days]
    }

    /// Serialises the run into its on-disk image (format v2): magic,
    /// `n`/`name_len`/`rdata_len` header, one CRC-32 per section, the
    /// four sections, and a footer CRC-32 over everything before it.
    // lint:certify(no-panic)
    pub fn to_bytes(&self) -> Vec<u8> {
        let sections = self.section_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(RUN_MAGIC);
        let push_u64 =
            |out: &mut Vec<u8>, v: usize| out.extend_from_slice(&(v as u64).to_be_bytes());
        push_u64(&mut out, self.len());
        push_u64(&mut out, self.name_bytes.len());
        push_u64(&mut out, self.rdata_bytes.len());
        for section in &sections {
            out.extend_from_slice(&crc32(section).to_be_bytes());
        }
        for section in &sections {
            out.extend_from_slice(section);
        }
        let footer = crc32(&out);
        out.extend_from_slice(&footer.to_be_bytes());
        out
    }

    /// Deserialises a [`Run::to_bytes`] image, rebuilding the index.
    ///
    /// Total on arbitrary input: the footer checksum is verified before
    /// any header field is trusted, every size computation is checked
    /// (a forged header cannot wrap the expected-length arithmetic), and
    /// section checksums, offset monotonicity, and strict composite-key
    /// ordering are all validated — so corruption is reported, never
    /// propagated into the panicking key decoders.
    ///
    /// # Errors
    ///
    /// Returns a message when the image is not a byte-exact, internally
    /// consistent v2 run.
    // lint:certify(no-panic)
    pub fn from_bytes(bytes: &[u8], epsilon: u32) -> Result<Run, String> {
        let Some((checked, footer)) = bytes
            .len()
            .checked_sub(4)
            .filter(|&split| split >= RUN_MAGIC.len())
            .and_then(|split| bytes.split_at_checked(split))
        else {
            return Err("run image shorter than magic + footer".to_string());
        };
        let footer: [u8; 4] =
            footer.try_into().map_err(|_| "run footer is not 4 bytes".to_string())?;
        let stored = u32::from_be_bytes(footer);
        if crc32(checked) != stored {
            return Err("run footer checksum mismatch".to_string());
        }
        let rest = checked.strip_prefix(RUN_MAGIC.as_slice()).ok_or("bad run magic")?;
        let Some((header, body)) = rest.split_at_checked(24 + 16) else {
            return Err("truncated run header".to_string());
        };
        let n64 = be_u64(header.get(0..8).unwrap_or(&[]));
        let name_len64 = be_u64(header.get(8..16).unwrap_or(&[]));
        let rdata_len64 = be_u64(header.get(16..24).unwrap_or(&[]));
        let section_crcs: Vec<u32> =
            header.get(24..40).unwrap_or(&[]).chunks_exact(4).map(be_u32).collect();
        // Checked expected-length arithmetic: a hostile header must not
        // be able to wrap these products and sneak past the length gate.
        let sizes = (|| {
            let offsets = n64.checked_add(1)?.checked_mul(4)?;
            let names = offsets.checked_add(name_len64)?;
            let qtypes = n64.checked_mul(2)?;
            let rdata = offsets.checked_add(rdata_len64)?;
            let days = n64.checked_mul(8)?;
            let total = names.checked_add(qtypes)?.checked_add(rdata)?.checked_add(days)?;
            Some(([names, qtypes, rdata, days], total))
        })();
        let Some((section_sizes, expect)) = sizes else {
            return Err("run header sizes overflow".to_string());
        };
        if body.len() as u64 != expect {
            return Err(format!("run body is {} bytes, expected {expect}", body.len()));
        }
        // The length gate passed, so every count fits comfortably in
        // memory-backed usize range.
        let n = n64 as usize;
        let name_len = name_len64 as usize;
        let rdata_len = rdata_len64 as usize;
        let mut at = 0usize;
        for (section, size) in section_crcs.iter().zip(section_sizes) {
            let size = usize::try_from(size).map_err(|_| "run section too large".to_string())?;
            let chunk = take_slice(body, &mut at, size)?;
            if crc32(chunk) != *section {
                return Err("run section checksum mismatch".to_string());
            }
        }
        let mut at = 0usize;
        let name_offsets: Vec<u32> =
            take_slice(body, &mut at, (n + 1) * 4)?.chunks_exact(4).map(be_u32).collect();
        let name_bytes = take_slice(body, &mut at, name_len)?.to_vec();
        let qtypes: Vec<u16> =
            take_slice(body, &mut at, n * 2)?.chunks_exact(2).map(be_u16).collect();
        let rdata_offsets: Vec<u32> =
            take_slice(body, &mut at, (n + 1) * 4)?.chunks_exact(4).map(be_u32).collect();
        let rdata_bytes = take_slice(body, &mut at, rdata_len)?.to_vec();
        let days: Vec<u64> =
            take_slice(body, &mut at, n * 8)?.chunks_exact(8).map(be_u64).collect();
        if name_offsets.first() != Some(&0)
            || name_offsets.last().copied() != u32::try_from(name_len).ok()
            || rdata_offsets.first() != Some(&0)
            || rdata_offsets.last().copied() != u32::try_from(rdata_len).ok()
            || !offsets_monotonic(&name_offsets)
            || !offsets_monotonic(&rdata_offsets)
        {
            return Err("inconsistent run offsets".to_string());
        }
        let names: Vec<&[u8]> = (0..n).map(|i| column_at(&name_bytes, &name_offsets, i)).collect();
        let index = RunIndex::build(&names, epsilon);
        let run = Run { name_offsets, name_bytes, qtypes, rdata_offsets, rdata_bytes, days, index };
        if (0..n.saturating_sub(1)).any(|i| run.cmp_entries(i, i + 1) != std::cmp::Ordering::Less) {
            return Err("run entries out of composite-key order".to_string());
        }
        Ok(run)
    }
}

/// The `i`th variable-width column entry: `buf[offsets[i]..offsets[i+1]]`,
/// or the empty slice when `i` or the offsets are out of range (offsets
/// are construction-validated, so in-contract callers never hit the
/// fallback).
// lint:certify(no-panic)
fn column_at<'b>(buf: &'b [u8], offsets: &[u32], i: usize) -> &'b [u8] {
    let lo = offsets.get(i).map_or(0, |&o| o as usize);
    let hi = offsets.get(i.saturating_add(1)).map_or(0, |&o| o as usize);
    buf.get(lo..hi).unwrap_or(&[])
}

/// Whether `offsets` never runs backwards (each column stays within the
/// byte buffer once the final offset is checked against its length).
fn offsets_monotonic(offsets: &[u32]) -> bool {
    offsets.iter().zip(offsets.iter().skip(1)).all(|(a, b)| a <= b)
}

/// The next `len` bytes of `body` from `*at`, advancing the position.
/// Bounds-checked: a forged length surfaces as `Err`, never a slice
/// panic.
// lint:certify(no-panic)
fn take_slice<'b>(body: &'b [u8], at: &mut usize, len: usize) -> Result<&'b [u8], String> {
    let end = at.checked_add(len).ok_or_else(|| "run body overrun".to_string())?;
    let s = body.get(*at..end).ok_or_else(|| "run body overrun".to_string())?;
    *at = end;
    Ok(s)
}

/// Decodes a big-endian `u64` chunk; total — a wrong-width chunk (which
/// `chunks_exact` never yields) decodes as zero.
fn be_u64(chunk: &[u8]) -> u64 {
    chunk.try_into().map(u64::from_be_bytes).unwrap_or(0)
}

/// Decodes a big-endian `u32` chunk; total, zero on wrong width.
fn be_u32(chunk: &[u8]) -> u32 {
    chunk.try_into().map(u32::from_be_bytes).unwrap_or(0)
}

/// Decodes a big-endian `u16` chunk; total, zero on wrong width.
fn be_u16(chunk: &[u8]) -> u16 {
    chunk.try_into().map(u16::from_be_bytes).unwrap_or(0)
}

/// `partition_point` over `0..n` by index predicate (the columns are not
/// slices of one element type, so the stdlib slice helper does not
/// apply).
fn partition_point_idx(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// [`partition_point_idx`] by exponential search: doubles a probe step
/// from the front until the predicate flips, then binary-searches the
/// last gap. `O(log k)` for an answer at position `k`, independent of
/// `n` — the right shape when the answer is expected near the start.
fn gallop_point(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    if n == 0 || !pred(0) {
        return 0;
    }
    let mut step = 1usize;
    while step < n && pred(step) {
        step *= 2;
    }
    let lo = step / 2 + 1;
    let hi = step.min(n);
    lo + partition_point_idx(hi - lo, |i| pred(lo + i))
}

#[cfg(test)]
mod tests {
    use super::super::index::DEFAULT_EPSILON;
    use super::super::keys::encode_key;
    use super::*;
    use dnsnoise_dns::{Name, QType, RData};
    use std::net::Ipv4Addr;

    fn entries(n: u32) -> Vec<(CompositeKey, u64)> {
        let mut out: Vec<(CompositeKey, u64)> = (0..n)
            .map(|i| {
                let name: Name = format!("d{i:06}.zone{}.example", i % 7).parse().unwrap();
                let rdata = RData::A(Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8));
                (encode_key(&name, QType::A, &rdata), u64::from(i % 13))
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn get_finds_every_stored_key_and_rejects_absent_ones() {
        let e = entries(3000);
        let run = Run::build(e.clone(), DEFAULT_EPSILON);
        for (key, day) in &e {
            assert_eq!(run.get(key), Some(*day));
        }
        let absent = encode_key(
            &"nope.zone9.example".parse().unwrap(),
            QType::A,
            &RData::A(Ipv4Addr::LOCALHOST),
        );
        assert_eq!(run.get(&absent), None);
    }

    #[test]
    fn prefix_range_is_exactly_the_subtree() {
        let e = entries(500);
        let run = Run::build(e, DEFAULT_EPSILON);
        let zone: Name = "zone3.example".parse().unwrap();
        let prefix = super::super::keys::encode_name(&zone);
        let (lo, hi) = run.prefix_range(&prefix);
        assert!(lo < hi);
        for i in 0..run.len() {
            let inside = lo <= i && i < hi;
            let rr_key = run.rr_key_at(i).expect("stored keys decode");
            assert_eq!(rr_key.name.is_subdomain_of(&zone), inside, "entry {i}");
        }
    }

    #[test]
    fn serialisation_roundtrips_bit_exactly() {
        let run = Run::build(entries(700), DEFAULT_EPSILON);
        let bytes = run.to_bytes();
        let back = Run::from_bytes(&bytes, DEFAULT_EPSILON).expect("well-formed image");
        assert_eq!(back, run, "columns and rebuilt index match");
        assert_eq!(back.to_bytes(), bytes, "re-serialisation is bit-identical");
        assert!(Run::from_bytes(&bytes[..40], DEFAULT_EPSILON).is_err());
        assert!(Run::from_bytes(b"junk", DEFAULT_EPSILON).is_err());
    }

    #[test]
    fn v1_images_are_rejected_as_unsupported() {
        let run = Run::build(entries(5), DEFAULT_EPSILON);
        let mut bytes = run.to_bytes();
        bytes[5] = b'1'; // dnrun02 -> dnrun01
        assert!(Run::from_bytes(&bytes, DEFAULT_EPSILON).is_err());
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let run = Run::build(entries(40), DEFAULT_EPSILON);
        let bytes = run.to_bytes();
        for byte in (0..bytes.len()).step_by(7) {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x04;
            assert!(
                Run::from_bytes(&flipped, DEFAULT_EPSILON).is_err(),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn out_of_order_entries_are_rejected_even_with_valid_checksums() {
        // Hand-build an image whose sections checksum correctly but whose
        // entries violate the composite-key sort order: swap two days'
        // worth of columns by rebuilding from swapped entries via the
        // private constructor path.
        let mut e = entries(10);
        e.swap(2, 7);
        let n = e.len();
        let mut name_offsets = vec![0u32];
        let mut name_bytes = Vec::new();
        let mut qtypes = Vec::new();
        let mut rdata_offsets = vec![0u32];
        let mut rdata_bytes = Vec::new();
        let mut days = Vec::new();
        for ((name, qtype, rdata), day) in e {
            name_bytes.extend_from_slice(&name);
            name_offsets.push(name_bytes.len() as u32);
            qtypes.push(qtype);
            rdata_bytes.extend_from_slice(&rdata);
            rdata_offsets.push(rdata_bytes.len() as u32);
            days.push(day);
        }
        let names: Vec<&[u8]> = (0..n)
            .map(|i| &name_bytes[name_offsets[i] as usize..name_offsets[i + 1] as usize])
            .collect();
        let index = RunIndex::build(&names, DEFAULT_EPSILON);
        let rogue =
            Run { name_offsets, name_bytes, qtypes, rdata_offsets, rdata_bytes, days, index };
        let err = Run::from_bytes(&rogue.to_bytes(), DEFAULT_EPSILON).unwrap_err();
        assert!(err.contains("order"), "{err}");
    }

    #[test]
    fn empty_run_is_well_behaved() {
        let run = Run::build(Vec::new(), DEFAULT_EPSILON);
        assert!(run.is_empty());
        let probe =
            encode_key(&"x.example".parse().unwrap(), QType::A, &RData::A(Ipv4Addr::LOCALHOST));
        assert_eq!(run.get(&probe), None);
        assert_eq!(run.prefix_range(b"\0"), (0, 0));
        let back = Run::from_bytes(&run.to_bytes(), DEFAULT_EPSILON).unwrap();
        assert!(back.is_empty());
    }
}
