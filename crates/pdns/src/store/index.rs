//! The per-run hybrid index: greedy piecewise-linear models over the
//! sorted key space with a bounded error window, falling back to a
//! classic sparse block index where the model stops paying off.
//!
//! Every entry's index feature is a 64-bit big-endian window of its
//! encoded name, read at the offset where the run's first and last names
//! stop sharing a prefix (the run-wide LCP). Within one sorted run the
//! feature is monotone non-decreasing, so equal features form contiguous
//! *groups*; the index maps a feature to a bounded candidate window
//! around its group's first entry, and the caller finishes with an exact
//! binary search over the full composite keys inside that window — a
//! lookup can therefore never miss, whichever index kind is in force.
//!
//! Determinism: the build is a pure function of the sorted keys (greedy
//! shrinking-cone fitting with IEEE-754 arithmetic, then a post-hoc
//! validation replaying the exact lookup formula against every group).
//! If any prediction lands outside the ±epsilon window — e.g. when
//! feature deltas exceed `f64`'s 53-bit mantissa — the run deterministically
//! falls back to the classic index, so correctness never rests on float
//! precision.

/// Maximum candidate-window half-width a PLA segment may promise.
///
/// A shrinking-cone segment covers `Θ(epsilon²)` keys of near-uniform
/// (hashed/high-entropy) key space, while the lookup's exact search over
/// the window costs only `log₂(2·epsilon)` probes — so widening epsilon
/// trades a couple of extra contiguous probes for quadratically fewer
/// segments. 32 keeps the window at one cache line's worth of binary
/// search and lets uniform disposable-label runs clear the payoff rule
/// below.
pub const DEFAULT_EPSILON: u32 = 32;

/// One classic sample per this many feature groups.
const CLASSIC_SAMPLE_EVERY: usize = 16;

/// The PLA must average at least this many feature groups per segment
/// (as a multiple of epsilon), or the run falls back to the classic
/// index. A shrinking-cone segment covers ~2·epsilon groups even on the
/// most hostile monotone data, so a model stuck near that floor has no
/// lookup-window advantage over the sparse samples — it only pays off
/// when the key space is locally linear enough (sequential labels,
/// near-uniform hashed names) for segments to stretch far beyond it.
const PLA_PAYOFF_EPS_MULTIPLE: usize = 4;

/// One linear segment of the learned model: entries from `start` (the
/// first entry of the first feature group the segment covers) predicted
/// by `start + slope * (x - x0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaSegment {
    /// Feature of the segment's first group.
    pub x0: u64,
    /// Entry index of the segment's first group's first entry.
    pub start: u32,
    /// Slope of the fitted line, in entries per feature unit.
    pub slope: f64,
}

/// A per-run index over the name-feature space.
#[derive(Debug, Clone, PartialEq)]
pub enum RunIndex {
    /// Piecewise-linear model with bounded error `epsilon`.
    Pla {
        /// Byte offset into every encoded name where the feature window
        /// starts (the run-wide longest common prefix).
        lcp: usize,
        /// Error bound honoured by every segment.
        epsilon: u32,
        /// Fitted segments, ordered by `x0`.
        segments: Vec<PlaSegment>,
    },
    /// Sparse sampled index: `(feature, entry index)` of every
    /// `CLASSIC_SAMPLE_EVERY`-th feature group.
    Classic {
        /// Byte offset into every encoded name where the feature window
        /// starts.
        lcp: usize,
        /// Sampled group starts, ordered by feature.
        samples: Vec<(u64, u32)>,
    },
}

impl RunIndex {
    /// Builds the index for `names`, the run's encoded-name column in
    /// sorted order. `n` lookups resolve against this column.
    pub fn build(names: &[&[u8]], epsilon: u32) -> RunIndex {
        let lcp = match (names.first(), names.last()) {
            (Some(first), Some(last)) => common_prefix_len(first, last),
            _ => 0,
        };
        let groups = feature_groups(names, lcp);
        let payoff = PLA_PAYOFF_EPS_MULTIPLE.saturating_mul(epsilon.max(1) as usize);
        if let Some(segments) = fit_pla(&groups, epsilon) {
            if groups.len() >= segments.len().saturating_mul(payoff)
                && validate_pla(&segments, &groups, epsilon, names.len())
            {
                return RunIndex::Pla { lcp, epsilon, segments };
            }
        }
        let samples = groups.iter().step_by(CLASSIC_SAMPLE_EVERY).copied().collect();
        RunIndex::Classic { lcp, samples }
    }

    /// The candidate entry window `[lo, hi)` that is guaranteed to
    /// contain the first entry of feature group `x`, if any entry of the
    /// run has feature `x`. `n` is the run length.
    pub fn window(&self, x: u64, n: usize) -> (usize, usize) {
        match self {
            RunIndex::Pla { epsilon, segments, .. } => {
                let i = segments.partition_point(|s| s.x0 <= x);
                // When i == 0, x precedes every fitted group: only the
                // run head could hold it.
                let Some(seg) = i.checked_sub(1).and_then(|i| segments.get(i)) else {
                    return (0, 1.min(n));
                };
                let seg_end = segments.get(i).map_or(n, |next| next.start as usize);
                let predicted = predict(seg, x);
                let eps = *epsilon as usize;
                let lo = predicted.saturating_sub(eps).clamp(seg.start as usize, seg_end);
                let hi = (predicted + eps + 1).clamp(seg.start as usize, seg_end);
                (lo, hi)
            }
            RunIndex::Classic { samples, .. } => {
                let below = samples.partition_point(|&(sx, _)| sx < x);
                let lo = below
                    .checked_sub(1)
                    .and_then(|i| samples.get(i))
                    .map_or(0, |&(_, p)| p as usize);
                let at_or_below = samples.partition_point(|&(sx, _)| sx <= x);
                let hi = samples.get(at_or_below).map_or(n, |&(_, p)| p as usize);
                (lo, hi)
            }
        }
    }

    /// The feature offset this index reads names at.
    pub fn lcp(&self) -> usize {
        match self {
            RunIndex::Pla { lcp, .. } | RunIndex::Classic { lcp, .. } => *lcp,
        }
    }

    /// Whether the learned model is in force (vs the classic fallback).
    pub fn is_learned(&self) -> bool {
        matches!(self, RunIndex::Pla { .. })
    }
}

/// The 64-bit big-endian feature window of `name` at byte offset `lcp`,
/// zero-padded past the end. Monotone over a sorted run because every
/// name in it shares the first `lcp` bytes and `0x00` padding is the
/// minimum byte.
// lint:certify(no-panic)
pub fn feature(name: &[u8], lcp: usize) -> u64 {
    let mut window = [0u8; 8];
    let tail = name.get(lcp..).unwrap_or(&[]);
    for (w, b) in window.iter_mut().zip(tail) {
        *w = *b;
    }
    u64::from_be_bytes(window)
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// `(feature, first entry index)` of every distinct feature group.
///
/// Group starts saturate at `u32::MAX`; unreachable in practice, since
/// the run format's `u32` column offsets already cap entry counts well
/// below that.
fn feature_groups(names: &[&[u8]], lcp: usize) -> Vec<(u64, u32)> {
    let mut groups: Vec<(u64, u32)> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let x = feature(name, lcp);
        if groups.last().is_none_or(|&(last_x, _)| last_x != x) {
            groups.push((x, u32::try_from(i).unwrap_or(u32::MAX)));
        }
    }
    groups
}

fn predict(seg: &PlaSegment, x: u64) -> usize {
    let delta = (x - seg.x0) as f64;
    let raw = seg.start as f64 + seg.slope * delta;
    if raw <= 0.0 {
        0
    } else {
        raw.round() as usize
    }
}

/// Greedy shrinking-cone fit of `position = f(feature)` over the group
/// starts. Returns `None` when there is nothing to fit.
fn fit_pla(groups: &[(u64, u32)], epsilon: u32) -> Option<Vec<PlaSegment>> {
    let (&(x0, p0), rest) = groups.split_first()?;
    let eps = epsilon as f64;
    let mut segments = Vec::new();
    let mut origin = (x0, p0);
    // The admissible slope cone for the open segment.
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for &(x, p) in rest {
        let dx = (x - origin.0) as f64;
        let dp = p as f64 - origin.1 as f64;
        // lint:allow(no-panic): f64 division is total, and dx >= 1 — group features strictly increase
        let point_lo = (dp - eps) / dx;
        // lint:allow(no-panic): f64 division is total, and dx >= 1 — group features strictly increase
        let point_hi = (dp + eps) / dx;
        if point_lo > hi || point_hi < lo {
            segments.push(close_segment(origin, lo, hi));
            origin = (x, p);
            lo = f64::NEG_INFINITY;
            hi = f64::INFINITY;
        } else {
            lo = lo.max(point_lo);
            hi = hi.min(point_hi);
        }
    }
    segments.push(close_segment(origin, lo, hi));
    Some(segments)
}

fn close_segment(origin: (u64, u32), lo: f64, hi: f64) -> PlaSegment {
    let slope = match (lo.is_finite(), hi.is_finite()) {
        (true, true) => (lo + hi) / 2.0,
        (true, false) => lo,
        (false, true) => hi,
        // Single-group segment: any slope predicts its one start.
        (false, false) => 0.0,
    };
    PlaSegment { x0: origin.0, start: origin.1, slope }
}

/// Replays the exact lookup computation against every group start; any
/// violation of the promised window rejects the model outright.
fn validate_pla(segments: &[PlaSegment], groups: &[(u64, u32)], epsilon: u32, n: usize) -> bool {
    let probe = RunIndex::Pla { lcp: 0, epsilon, segments: segments.to_vec() };
    groups.iter().all(|&(x, p)| {
        let (lo, hi) = probe.window(x, n);
        let p = p as usize;
        lo <= p && p < hi
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_cover_all_groups(names: &[Vec<u8>], index: &RunIndex) {
        let lcp = index.lcp();
        for (i, name) in names.iter().enumerate() {
            let x = feature(name, lcp);
            // Only group starts are promised; find this feature's start.
            let start = names.iter().position(|m| feature(m, lcp) == x).unwrap();
            let (lo, hi) = index.window(x, names.len());
            assert!(lo <= start && start < hi, "entry {i}: start {start} outside [{lo},{hi})");
        }
    }

    #[test]
    fn linear_keys_learn_a_tiny_model() {
        // Dense sequential labels in a base-255 byte encoding: the
        // feature is linear in the position to within half a unit, so
        // one cone segment stretches across thousands of keys and the
        // whole run is served by a handful of segments.
        let names: Vec<Vec<u8>> = (0..4096u32)
            .map(|i| {
                let label = [b'd', (i / 255) as u8 + 1, (i % 255) as u8 + 1];
                let mut name = b"com\0seq\0".to_vec();
                name.extend_from_slice(&label);
                name.push(0);
                name
            })
            .collect();
        let refs: Vec<&[u8]> = names.iter().map(Vec::as_slice).collect();
        let index = RunIndex::build(&refs, DEFAULT_EPSILON);
        assert!(index.is_learned(), "sequential keys must engage the PLA: {index:?}");
        if let RunIndex::Pla { segments, .. } = &index {
            assert!(segments.len() <= 4, "{} segments for linear keys", segments.len());
        }
        windows_cover_all_groups(&names, &index);
    }

    #[test]
    fn alternating_gaps_fall_back_to_classic() {
        // Dense bursts separated by huge gaps: the gaps pin the slope
        // near zero, and each burst is long enough (> 2·epsilon keys) to
        // drift past the error bound off that flat line, so every cone
        // segment dies within a burst or two and the payoff rule rejects
        // the model in favour of the sparse samples.
        let burst = 2 * DEFAULT_EPSILON + 2;
        let names: Vec<Vec<u8>> = (0..2048u32)
            .map(|i| {
                let v = (i / burst) * (1 << 24) + (i % burst);
                format!("com\0alt\0{v:08x}\0").into_bytes()
            })
            .collect();
        let refs: Vec<&[u8]> = names.iter().map(Vec::as_slice).collect();
        let index = RunIndex::build(&refs, DEFAULT_EPSILON);
        assert!(!index.is_learned(), "alternating gaps must reject the PLA");
        windows_cover_all_groups(&names, &index);
    }

    #[test]
    fn duplicate_features_keep_the_window_guarantee() {
        // Many entries share one feature (same owner name, many RDATAs):
        // the window must still contain the group start.
        let mut names: Vec<Vec<u8>> = Vec::new();
        for z in 0..64u32 {
            for _ in 0..50 {
                names.push(format!("com\0dup\0z{z:04}\0").into_bytes());
            }
        }
        names.sort();
        let refs: Vec<&[u8]> = names.iter().map(Vec::as_slice).collect();
        let index = RunIndex::build(&refs, DEFAULT_EPSILON);
        windows_cover_all_groups(&names, &index);
    }

    #[test]
    fn single_name_run_works() {
        let names: Vec<Vec<u8>> = vec![b"com\0one\0".to_vec()];
        let refs: Vec<&[u8]> = names.iter().map(Vec::as_slice).collect();
        let index = RunIndex::build(&refs, DEFAULT_EPSILON);
        windows_cover_all_groups(&names, &index);
        let (lo, hi) = index.window(feature(&names[0], index.lcp()), 1);
        assert!(lo == 0 && hi >= 1);
    }
}
