//! Wildcard aggregation of disposable records (§VI-C mitigation).
//!
//! "The problem can be mitigated by filtering disposable domains and
//! storing a single wildcard domain in the pDNS-DB. For example, a domain
//! name like `1022vr5.dns.xx.fbcdn.net` can be replaced by
//! `*.dns.xx.fbcdn.net`."

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use dnsnoise_dns::{Name, RrKey};

/// The effect of aggregating a record set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationOutcome {
    /// Records that matched a disposable `(zone, depth)` rule.
    pub aggregated_records: u64,
    /// Distinct wildcard entries those records collapsed into.
    pub wildcard_entries: u64,
    /// Records kept verbatim (no rule matched).
    pub passthrough_records: u64,
}

impl AggregationOutcome {
    /// Stored entries after aggregation.
    pub fn stored_entries(&self) -> u64 {
        self.wildcard_entries + self.passthrough_records
    }

    /// `stored / original` — the paper reports 0.7% for the disposable
    /// portion alone.
    pub fn reduction_ratio(&self) -> f64 {
        let original = self.aggregated_records + self.passthrough_records;
        if original == 0 {
            1.0
        } else {
            self.stored_entries() as f64 / original as f64
        }
    }

    /// The reduction ratio over only the aggregated (disposable) portion.
    pub fn disposable_reduction_ratio(&self) -> f64 {
        if self.aggregated_records == 0 {
            1.0
        } else {
            self.wildcard_entries as f64 / self.aggregated_records as f64
        }
    }
}

/// Aggregates records under mined disposable `(zone, depth)` pairs into
/// wildcard entries.
///
/// # Examples
///
/// ```
/// use dnsnoise_pdns::WildcardAggregator;
///
/// let zone: dnsnoise_dns::Name = "dns.xx.fbcdn.net".parse()?;
/// let mut agg = WildcardAggregator::new();
/// agg.add_rule(zone, 5);
/// let name: dnsnoise_dns::Name = "1022vr5.dns.xx.fbcdn.net".parse()?;
/// assert_eq!(agg.wildcard_of(&name).unwrap().to_string(), "_star.dns.xx.fbcdn.net");
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WildcardAggregator {
    /// `zone → depths` with disposable children.
    rules: HashMap<Name, HashSet<usize>>,
}

impl WildcardAggregator {
    /// Creates an aggregator with no rules.
    pub fn new() -> Self {
        WildcardAggregator::default()
    }

    /// Adds a mined `(zone, depth)` rule.
    pub fn add_rule(&mut self, zone: Name, depth: usize) {
        self.rules.entry(zone).or_default().insert(depth);
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(HashSet::len).sum()
    }

    /// The wildcard name replacing `name`, if a rule covers it. The `*`
    /// label is spelled `_star` because `*` is not a hostname character in
    /// this model's label alphabet; semantics are identical.
    pub fn wildcard_of(&self, name: &Name) -> Option<Name> {
        // A rule (zone, k) covers names at exactly depth k under zone; the
        // wildcard owner is one label below the zone (RFC 1034 wildcards
        // only expand one level conceptually, and the paper's example
        // collapses the whole child space into `*.<zone>`).
        for k in (1..name.depth()).rev() {
            let zone = name.nld(k).expect("k < depth");
            if let Some(depths) = self.rules.get(&zone) {
                if depths.contains(&name.depth()) {
                    return Some(zone.child("_star".parse().expect("static label")));
                }
            }
        }
        None
    }

    /// Aggregates an iterator of stored record keys.
    pub fn aggregate<'a, I>(&self, records: I) -> AggregationOutcome
    where
        I: IntoIterator<Item = &'a RrKey>,
    {
        let mut outcome = AggregationOutcome::default();
        let mut wildcards: HashSet<(Name, dnsnoise_dns::QType)> = HashSet::new();
        for key in records {
            match self.wildcard_of(&key.name) {
                Some(wild) => {
                    outcome.aggregated_records += 1;
                    wildcards.insert((wild, key.qtype));
                }
                None => outcome.passthrough_records += 1,
            }
        }
        outcome.wildcard_entries = wildcards.len() as u64;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_dns::{QType, RData};
    use std::net::Ipv4Addr;

    fn key(name: &str, ip: u8) -> RrKey {
        RrKey {
            name: name.parse().unwrap(),
            qtype: QType::A,
            rdata: RData::A(Ipv4Addr::new(192, 0, 2, ip)),
        }
    }

    fn agg_with_rule(zone: &str, depth: usize) -> WildcardAggregator {
        let mut agg = WildcardAggregator::new();
        agg.add_rule(zone.parse().unwrap(), depth);
        agg
    }

    #[test]
    fn collapses_disposable_children() {
        let agg = agg_with_rule("avqs.mcafee.com", 4);
        let keys: Vec<RrKey> =
            (0..100).map(|i| key(&format!("h{i}.avqs.mcafee.com"), (i % 250) as u8)).collect();
        let outcome = agg.aggregate(keys.iter());
        assert_eq!(outcome.aggregated_records, 100);
        assert_eq!(outcome.wildcard_entries, 1);
        assert_eq!(outcome.passthrough_records, 0);
        assert!((outcome.reduction_ratio() - 0.01).abs() < 1e-9);
        assert!((outcome.disposable_reduction_ratio() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn depth_mismatch_passes_through() {
        let agg = agg_with_rule("avqs.mcafee.com", 4);
        // Depth 5, rule says 4.
        let outcome = agg.aggregate([&key("x.y.avqs.mcafee.com", 1)]);
        assert_eq!(outcome.aggregated_records, 0);
        assert_eq!(outcome.passthrough_records, 1);
        assert_eq!(outcome.reduction_ratio(), 1.0);
    }

    #[test]
    fn unrelated_zone_passes_through() {
        let agg = agg_with_rule("avqs.mcafee.com", 4);
        let outcome = agg.aggregate([&key("a.example.com", 1)]);
        assert_eq!(outcome.passthrough_records, 1);
    }

    #[test]
    fn per_qtype_wildcards() {
        let agg = agg_with_rule("z.example.com", 4);
        let a = key("h1.z.example.com", 1);
        let mut aaaa = key("h2.z.example.com", 2);
        aaaa.qtype = QType::Aaaa;
        let outcome = agg.aggregate([&a, &aaaa]);
        assert_eq!(outcome.wildcard_entries, 2, "one wildcard per qtype");
    }

    #[test]
    fn multiple_rules_coexist() {
        let mut agg = WildcardAggregator::new();
        agg.add_rule("a.example.com".parse().unwrap(), 4);
        agg.add_rule("b.example.net".parse().unwrap(), 4);
        assert_eq!(agg.rule_count(), 2);
        let outcome = agg.aggregate([&key("x.a.example.com", 1), &key("y.b.example.net", 2)]);
        assert_eq!(outcome.wildcard_entries, 2);
        assert_eq!(outcome.aggregated_records, 2);
    }

    #[test]
    fn empty_input_is_benign() {
        let agg = agg_with_rule("z.example.com", 4);
        let outcome = agg.aggregate(std::iter::empty::<&RrKey>());
        assert_eq!(outcome.stored_entries(), 0);
        assert_eq!(outcome.reduction_ratio(), 1.0);
    }
}
