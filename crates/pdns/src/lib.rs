//! Passive DNS databases (pDNS-DBs).
//!
//! The paper's §III-A defines two datasets collected at the monitoring
//! point and §VI-C analyses their storage economics:
//!
//! * [`FpDnsLog`] — the **full passive DNS** dataset: every answer-section
//!   tuple `(timestamp, client, name, qtype, TTL, RDATA)` observed below
//!   the recursives, optionally exercised through the RFC 1035 wire codec
//!   the way a real collector parses packets off the wire.
//! * [`RpDns`] — the **reduced passive DNS** dataset: distinct resource
//!   records from successful resolutions with their first-seen day, the
//!   substrate of Fig. 5 / Fig. 15 and of the §VI-C storage discussion.
//! * [`WildcardAggregator`] — the §VI-C mitigation: collapse disposable
//!   records under their mined `(zone, depth)` into a single wildcard
//!   record (`1022vr5.dns.xx.fbcdn.net` → `*.dns.xx.fbcdn.net`), which in
//!   the paper shrinks 129,674,213 disposable records to 945,065 (0.7%).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fpdns;
mod rpdns;
pub mod store;
mod wildcard;

pub use fpdns::{FpDnsLog, FpDnsLogParts, FpDnsRecord};
pub use rpdns::{DailyNewRrs, RpDns};
pub use store::{
    fsck, BackendKind, PdnsBackend, PdnsStore, RecoveryReport, Run, RunStore, StoreConfig,
    StoreError, StoreStats,
};
pub use wildcard::{AggregationOutcome, WildcardAggregator};
