//! The full passive DNS (fpDNS) dataset.

use serde::{Deserialize, Serialize};

use dnsnoise_dns::{wire, Message, QType, Question, RData, Rcode, Record, RrKey, Timestamp, Ttl};

/// One fpDNS tuple (§III-A): "the timestamp of the DNS resolution event
/// (in the granularity of seconds), an anonymized client ID, the queried
/// domain name, the DNS query type, the time-to-live value, and the
/// resolution data".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpDnsRecord {
    /// Resolution time.
    pub timestamp: Timestamp,
    /// Anonymised client id.
    pub client: u64,
    /// Queried name.
    pub name: dnsnoise_dns::Name,
    /// Query type.
    pub qtype: QType,
    /// Record TTL.
    pub ttl: Ttl,
    /// Resolution data.
    pub rdata: RData,
}

impl FpDnsRecord {
    /// Approximate storage footprint in bytes (name + fixed fields +
    /// rdata), used by the §VI-C storage model.
    pub fn storage_bytes(&self) -> usize {
        // The shared per-record accounting (name + type/ttl + rdata, see
        // `RrKey::storage_bytes`) plus the fpDNS-only timestamp (8) and
        // client id (8).
        RrKey::storage_bytes_of(&self.name, &self.rdata) + 16
    }
}

/// The fpDNS collector: accumulates answer-section tuples and storage
/// accounting, optionally round-tripping each response through the wire
/// codec (as a real collector parsing packets would).
///
/// Retention is bounded: at most `retain` tuples are kept in memory while
/// counters keep exact totals, since a day of ISP traffic does not fit in
/// a test process (the paper's fpDNS runs 60–145 GB/day compressed).
///
/// # Examples
///
/// ```
/// use dnsnoise_pdns::FpDnsLog;
/// use dnsnoise_dns::{QType, RData, Record, Timestamp, Ttl};
/// use std::net::Ipv4Addr;
///
/// let mut log = FpDnsLog::new(100, true);
/// let name: dnsnoise_dns::Name = "www.example.com".parse()?;
/// let rr = Record::new(name.clone(), QType::A, Ttl::from_secs(60), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
/// log.collect(Timestamp::ZERO, 7, &name, QType::A, &[rr]);
/// assert_eq!(log.total_records(), 1);
/// assert_eq!(log.wire_parse_failures(), 0);
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FpDnsLog {
    retain: usize,
    exercise_wire: bool,
    retained: Vec<FpDnsRecord>,
    total_records: u64,
    total_responses: u64,
    nx_responses: u64,
    storage_bytes: u64,
    wire_roundtrips: u64,
    wire_parse_failures: u64,
    next_txid: u16,
    /// Collector growth by hour of (simulated) day: tuples appended and
    /// storage bytes added per hour — the intra-day growth curve a
    /// capacity planner watches (§VI-C storage model).
    hourly_records: [u64; 24],
    hourly_storage_bytes: [u64; 24],
}

impl FpDnsLog {
    /// Creates a collector retaining up to `retain` tuples in memory.
    /// With `exercise_wire`, every response is encoded to RFC 1035 wire
    /// format and re-decoded, verifying the parse path end to end.
    pub fn new(retain: usize, exercise_wire: bool) -> Self {
        FpDnsLog {
            retain,
            exercise_wire,
            retained: Vec::new(),
            total_records: 0,
            total_responses: 0,
            nx_responses: 0,
            storage_bytes: 0,
            wire_roundtrips: 0,
            wire_parse_failures: 0,
            next_txid: 1,
            hourly_records: [0; 24],
            hourly_storage_bytes: [0; 24],
        }
    }

    /// Records one response's answer section (empty = NXDOMAIN).
    pub fn collect(
        &mut self,
        timestamp: Timestamp,
        client: u64,
        qname: &dnsnoise_dns::Name,
        qtype: QType,
        answers: &[Record],
    ) {
        self.total_responses += 1;
        if answers.is_empty() {
            self.nx_responses += 1;
        }
        if self.exercise_wire {
            self.roundtrip_wire(qname, qtype, answers);
        }
        let hour = (timestamp.hour_of_day() as usize).min(23);
        for rr in answers {
            self.total_records += 1;
            let tuple = FpDnsRecord {
                timestamp,
                client,
                name: rr.name.clone(),
                qtype: rr.qtype,
                ttl: rr.ttl,
                rdata: rr.rdata.clone(),
            };
            let bytes = tuple.storage_bytes() as u64;
            self.storage_bytes += bytes;
            self.hourly_records[hour] += 1;
            self.hourly_storage_bytes[hour] += bytes;
            if self.retained.len() < self.retain {
                self.retained.push(tuple);
            }
        }
    }

    /// Encodes the response as a packet and parses it back, counting
    /// failures instead of panicking (a collector must survive bad
    /// packets). NXDOMAIN responses carry a synthetic SOA in the
    /// authority section, like real RFC 2308 negative responses.
    fn roundtrip_wire(&mut self, qname: &dnsnoise_dns::Name, qtype: QType, answers: &[Record]) {
        let msg = if answers.is_empty() {
            let zone = qname.nld(2.min(qname.depth())).unwrap_or_else(|| qname.clone());
            let soa = Record::new(
                zone.clone(),
                QType::Soa,
                Ttl::from_secs(900),
                RData::Soa {
                    mname: zone.child("ns1".parse().expect("static label")),
                    rname: zone.child("hostmaster".parse().expect("static label")),
                    serial: 2_011_113_001,
                    refresh: 7_200,
                    retry: 900,
                    expire: 1_209_600,
                    minimum: 900,
                },
            );
            Message::negative_response(self.next_txid, Question::new(qname.clone(), qtype), soa)
        } else {
            Message::response(
                self.next_txid,
                Question::new(qname.clone(), qtype),
                Rcode::NoError,
                answers.to_vec(),
            )
        };
        self.next_txid = self.next_txid.wrapping_add(1);
        self.wire_roundtrips += 1;
        match wire::encode(&msg).map(|bytes| wire::decode(&bytes)) {
            Ok(Ok(parsed)) if parsed == msg => {}
            _ => self.wire_parse_failures += 1,
        }
    }

    /// Folds a collector of the same configuration into this one: every
    /// counter is summed and the retained sample is topped up from
    /// `other`'s (in `other`'s order) until the retention cap.
    ///
    /// The sharded simulation engine forks one collector per shard and
    /// absorbs them in shard order, so every count (responses, records,
    /// storage bytes, wire round-trips and failures) matches a
    /// single-threaded run exactly; only *which* tuples happen to be
    /// retained under the cap can differ, since retention is a
    /// first-come sample.
    pub fn merge(&mut self, other: FpDnsLog) {
        self.total_records += other.total_records;
        self.total_responses += other.total_responses;
        self.nx_responses += other.nx_responses;
        self.storage_bytes += other.storage_bytes;
        self.wire_roundtrips += other.wire_roundtrips;
        self.wire_parse_failures += other.wire_parse_failures;
        for (mine, theirs) in self.hourly_records.iter_mut().zip(other.hourly_records) {
            *mine += theirs;
        }
        for (mine, theirs) in self.hourly_storage_bytes.iter_mut().zip(other.hourly_storage_bytes) {
            *mine += theirs;
        }
        let room = self.retain.saturating_sub(self.retained.len());
        self.retained.extend(other.retained.into_iter().take(room));
        // Keep the single-threaded invariant txid = roundtrips + 1.
        // lint:allow(merge-cast): txid is a 16-bit wire field; wrapping is the DNS invariant
        self.next_txid = (self.wire_roundtrips as u16).wrapping_add(1);
    }

    /// The complete internal state, for checkpoint serialisation.
    pub fn to_parts(&self) -> FpDnsLogParts {
        FpDnsLogParts {
            retain: self.retain,
            exercise_wire: self.exercise_wire,
            retained: self.retained.clone(),
            total_records: self.total_records,
            total_responses: self.total_responses,
            nx_responses: self.nx_responses,
            storage_bytes: self.storage_bytes,
            wire_roundtrips: self.wire_roundtrips,
            wire_parse_failures: self.wire_parse_failures,
            next_txid: self.next_txid,
            hourly_records: self.hourly_records,
            hourly_storage_bytes: self.hourly_storage_bytes,
        }
    }

    /// Rebuilds a collector from checkpointed parts; the inverse of
    /// [`FpDnsLog::to_parts`], bit-exact including the wire transaction
    /// id, so a resumed collector continues exactly where the
    /// checkpointed one stopped.
    pub fn from_parts(parts: FpDnsLogParts) -> FpDnsLog {
        FpDnsLog {
            retain: parts.retain,
            exercise_wire: parts.exercise_wire,
            retained: parts.retained,
            total_records: parts.total_records,
            total_responses: parts.total_responses,
            nx_responses: parts.nx_responses,
            storage_bytes: parts.storage_bytes,
            wire_roundtrips: parts.wire_roundtrips,
            wire_parse_failures: parts.wire_parse_failures,
            next_txid: parts.next_txid,
            hourly_records: parts.hourly_records,
            hourly_storage_bytes: parts.hourly_storage_bytes,
        }
    }

    /// The retained tuple sample (up to the retention cap).
    pub fn retained(&self) -> &[FpDnsRecord] {
        &self.retained
    }

    /// Total answer-section records observed.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total responses observed (including NXDOMAIN).
    pub fn total_responses(&self) -> u64 {
        self.total_responses
    }

    /// NXDOMAIN responses observed.
    pub fn nx_responses(&self) -> u64 {
        self.nx_responses
    }

    /// Modelled storage footprint of the full log in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bytes
    }

    /// Wire round-trips performed.
    pub fn wire_roundtrips(&self) -> u64 {
        self.wire_roundtrips
    }

    /// Wire round-trips that failed to re-parse identically.
    pub fn wire_parse_failures(&self) -> u64 {
        self.wire_parse_failures
    }

    /// Tuples appended per hour of simulated day (collector growth).
    pub fn hourly_records(&self) -> &[u64; 24] {
        &self.hourly_records
    }

    /// Storage bytes added per hour of simulated day.
    pub fn hourly_storage_bytes(&self) -> &[u64; 24] {
        &self.hourly_storage_bytes
    }
}

/// The complete internal state of an [`FpDnsLog`], exposed field by
/// field so process-level checkpoints can serialise and restore the
/// collector bit-exactly (see [`FpDnsLog::to_parts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpDnsLogParts {
    /// Retention cap.
    pub retain: usize,
    /// Whether responses are round-tripped through the wire codec.
    pub exercise_wire: bool,
    /// The retained tuple sample.
    pub retained: Vec<FpDnsRecord>,
    /// Total answer-section records observed.
    pub total_records: u64,
    /// Total responses observed.
    pub total_responses: u64,
    /// NXDOMAIN responses observed.
    pub nx_responses: u64,
    /// Modelled storage footprint.
    pub storage_bytes: u64,
    /// Wire round-trips performed.
    pub wire_roundtrips: u64,
    /// Failed wire round-trips.
    pub wire_parse_failures: u64,
    /// Next wire transaction id.
    pub next_txid: u16,
    /// Tuples appended per hour of day.
    pub hourly_records: [u64; 24],
    /// Storage bytes added per hour of day.
    pub hourly_storage_bytes: [u64; 24],
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rr(name: &str, ip: u8) -> Record {
        Record::new(
            name.parse().unwrap(),
            QType::A,
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, ip)),
        )
    }

    #[test]
    fn counts_and_retains() {
        let mut log = FpDnsLog::new(1, false);
        let n = "a.example.com".parse().unwrap();
        log.collect(
            Timestamp::ZERO,
            1,
            &n,
            QType::A,
            &[rr("a.example.com", 1), rr("b.example.com", 2)],
        );
        log.collect(Timestamp::from_secs(5), 2, &n, QType::A, &[rr("a.example.com", 1)]);
        assert_eq!(log.total_records(), 3);
        assert_eq!(log.total_responses(), 2);
        // Retention capped at 1.
        assert_eq!(log.retained().len(), 1);
        assert!(log.storage_bytes() > 0);
    }

    #[test]
    fn nxdomain_is_counted_separately() {
        let mut log = FpDnsLog::new(10, false);
        let n = "no.example.com".parse().unwrap();
        log.collect(Timestamp::ZERO, 1, &n, QType::A, &[]);
        assert_eq!(log.nx_responses(), 1);
        assert_eq!(log.total_records(), 0);
    }

    #[test]
    fn wire_roundtrip_path_is_clean() {
        let mut log = FpDnsLog::new(0, true);
        let n = "www.example.com".parse().unwrap();
        for i in 0..50u8 {
            log.collect(
                Timestamp::from_secs(u64::from(i)),
                1,
                &n,
                QType::A,
                &[rr("www.example.com", i)],
            );
        }
        log.collect(Timestamp::ZERO, 1, &n, QType::A, &[]);
        assert_eq!(log.wire_roundtrips(), 51);
        assert_eq!(log.wire_parse_failures(), 0);
    }

    #[test]
    fn merge_sums_counters_and_caps_retention() {
        let n: dnsnoise_dns::Name = "a.example.com".parse().unwrap();
        let mut whole = FpDnsLog::new(3, true);
        let mut left = FpDnsLog::new(3, true);
        let mut right = FpDnsLog::new(3, true);
        for i in 0..4u8 {
            let answers = [rr("a.example.com", i)];
            let t = Timestamp::from_secs(u64::from(i));
            whole.collect(t, 1, &n, QType::A, &answers);
            if i % 2 == 0 { &mut left } else { &mut right }.collect(t, 1, &n, QType::A, &answers);
        }
        whole.collect(Timestamp::from_secs(9), 2, &n, QType::A, &[]);
        right.collect(Timestamp::from_secs(9), 2, &n, QType::A, &[]);

        left.merge(right);
        assert_eq!(left.total_records(), whole.total_records());
        assert_eq!(left.total_responses(), whole.total_responses());
        assert_eq!(left.nx_responses(), whole.nx_responses());
        assert_eq!(left.storage_bytes(), whole.storage_bytes());
        assert_eq!(left.wire_roundtrips(), whole.wire_roundtrips());
        assert_eq!(left.wire_parse_failures(), 0);
        assert_eq!(left.retained().len(), 3, "retention cap holds across merges");
        assert_eq!(left.hourly_records(), whole.hourly_records());
        assert_eq!(left.hourly_storage_bytes(), whole.hourly_storage_bytes());
    }

    #[test]
    fn hourly_growth_buckets_by_timestamp() {
        let mut log = FpDnsLog::new(0, false);
        let n: dnsnoise_dns::Name = "a.example.com".parse().unwrap();
        log.collect(Timestamp::from_secs(30), 1, &n, QType::A, &[rr("a.example.com", 1)]);
        log.collect(
            Timestamp::from_secs(7 * 3_600 + 5),
            1,
            &n,
            QType::A,
            &[rr("a.example.com", 2), rr("b.example.com", 3)],
        );
        assert_eq!(log.hourly_records()[0], 1);
        assert_eq!(log.hourly_records()[7], 2);
        assert_eq!(log.hourly_records().iter().sum::<u64>(), log.total_records());
        assert_eq!(log.hourly_storage_bytes().iter().sum::<u64>(), log.storage_bytes());
        assert!(log.hourly_storage_bytes()[7] > log.hourly_storage_bytes()[0]);
    }

    #[test]
    fn storage_grows_with_name_length() {
        let mut short = FpDnsLog::new(0, false);
        let mut long = FpDnsLog::new(0, false);
        let ns = "a.com".parse().unwrap();
        let nl = "load-0-p-01.up-1852280.device.trans.manage.esoft.com".parse().unwrap();
        short.collect(Timestamp::ZERO, 1, &ns, QType::A, &[rr("a.com", 1)]);
        long.collect(
            Timestamp::ZERO,
            1,
            &nl,
            QType::A,
            &[rr("load-0-p-01.up-1852280.device.trans.manage.esoft.com", 1)],
        );
        assert!(long.storage_bytes() > short.storage_bytes());
    }
}
