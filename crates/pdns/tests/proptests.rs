//! Property-based tests for passive-DNS invariants.

use dnsnoise_dns::{Name, QType, RData, Record, RrKey, Timestamp, Ttl};
use dnsnoise_pdns::{FpDnsLog, PdnsStore, RpDns, RunStore, StoreConfig, WildcardAggregator};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::string::string_regex("[a-z0-9]{1,8}(\\.[a-z0-9]{1,8}){1,4}").unwrap(),
        any::<[u8; 4]>(),
        0u32..10_000,
    )
        .prop_map(|(name, ip, ttl)| {
            Record::new(
                name.parse::<Name>().unwrap(),
                QType::A,
                Ttl::from_secs(ttl),
                RData::A(Ipv4Addr::from(ip)),
            )
        })
}

/// A tiny engine configuration so even small proptest inputs exercise
/// memtable flushes and size-tiered compactions, not just the memtable.
fn tiny_config() -> StoreConfig {
    StoreConfig { memtable_cap: 8, fanout: 2, ..StoreConfig::default() }
}

/// Asserts the two backends are observationally identical through every
/// read surface of the [`PdnsStore`] trait.
fn assert_stores_agree(mem: &RpDns, disk: &RunStore, records: &[Record]) {
    assert_eq!(PdnsStore::len(mem), PdnsStore::len(disk), "len diverged");
    assert_eq!(
        PdnsStore::storage_bytes(mem),
        PdnsStore::storage_bytes(disk),
        "storage_bytes diverged"
    );
    assert_eq!(
        PdnsStore::daily_stats(mem),
        PdnsStore::daily_stats(disk),
        "per-day new/repeated counters diverged"
    );
    let root = Name::root();
    assert_eq!(
        PdnsStore::scan_prefix(mem, &root),
        PdnsStore::scan_prefix(disk, &root),
        "full scan order diverged"
    );
    for record in records {
        let key = record.key();
        assert_eq!(
            PdnsStore::first_seen(mem, &key),
            PdnsStore::first_seen(disk, &key),
            "first_seen diverged for {key}"
        );
        if let Some(zone) = key.name.parent() {
            assert_eq!(
                PdnsStore::scan_prefix(mem, &zone),
                PdnsStore::scan_prefix(disk, &zone),
                "zone scan diverged under {zone}"
            );
        }
    }
}

proptest! {
    /// The learned-index engine behind `--store disk` is observationally
    /// identical to the in-memory `RpDns` under random interleavings of
    /// observes (with duplicate keys across days) and shard merges:
    /// identical `first_seen`, per-day new/repeated counters, storage
    /// bytes, and `scan_prefix` order.
    #[test]
    fn backends_equivalent_under_observe_merge_scan(
        records in proptest::collection::vec(arb_record(), 1..48),
        splits in proptest::collection::vec(0usize..4, 1..48),
        days in proptest::collection::vec(0u64..5, 1..48),
    ) {
        let mut mem = RpDns::new();
        let mut disk = RunStore::with_config(tiny_config());
        // Shard the observation stream into up to four forks, replay each
        // record into its shard (duplicates land in different shards), and
        // merge the forks back in shard order — the resolver's fork/absorb
        // discipline.
        let mut mem_shards: Vec<RpDns> = (0..4).map(|_| PdnsStore::fork(&mem)).collect();
        let mut disk_shards: Vec<RunStore> = (0..4).map(|_| PdnsStore::fork(&disk)).collect();
        for (i, record) in records.iter().enumerate() {
            let shard = splits[i % splits.len()];
            let day = days[i % days.len()];
            let mem_new = mem_shards[shard].observe(record, day);
            let disk_new = disk_shards[shard].observe(record, day);
            prop_assert_eq!(mem_new, disk_new, "observe novelty diverged at event {}", i);
        }
        for (m, d) in mem_shards.into_iter().zip(disk_shards) {
            PdnsStore::merge(&mut mem, m);
            PdnsStore::merge(&mut disk, d);
        }
        assert_stores_agree(&mem, &disk, &records);
        // Replaying every record on a later day only reclassifies: counts
        // and storage stay fixed, repeated counters still match.
        for record in &records {
            mem.observe(record, 6);
            disk.observe(record, 6);
        }
        assert_stores_agree(&mem, &disk, &records);
    }

    /// Bounded-epsilon guarantee: whatever the key distribution — clumped,
    /// adversarial, or degenerate — every stored key is found after runs
    /// are built, and every lookup agrees with the memory backend. This
    /// pins that a learned segment's error window never causes a miss and
    /// that the classic fallback engages transparently.
    #[test]
    fn learned_index_lookups_never_miss(
        records in proptest::collection::vec(arb_record(), 1..64),
        epsilon in 1u32..32,
    ) {
        let config = StoreConfig { memtable_cap: 4, fanout: 2, epsilon, ..StoreConfig::default() };
        let mut mem = RpDns::new();
        let mut disk = RunStore::with_config(config);
        for (i, record) in records.iter().enumerate() {
            mem.observe(record, (i % 3) as u64);
            disk.observe(record, (i % 3) as u64);
        }
        disk.optimize();
        for record in &records {
            let key = record.key();
            let expected = mem.first_seen(&key);
            prop_assert!(expected.is_some());
            prop_assert_eq!(disk.first_seen(&key), expected, "lookup missed {}", key);
        }
        // A name observed under no record must stay absent.
        let absent: Name = "definitely.not.observed.invalid".parse().unwrap();
        let absent_key = RrKey {
            name: absent,
            qtype: QType::A,
            rdata: RData::A(Ipv4Addr::new(203, 0, 113, 7)),
        };
        prop_assert_eq!(disk.first_seen(&absent_key), None);
    }

    /// rpDNS dedup is idempotent: replaying the same records never grows
    /// the store, and per-day counters conserve total observations.
    #[test]
    fn rpdns_dedup_idempotent(records in proptest::collection::vec(arb_record(), 1..60), days in 1u64..5) {
        let mut store = RpDns::new();
        for day in 0..days {
            for r in &records {
                store.observe(r, day);
            }
        }
        let distinct: std::collections::HashSet<RrKey> = records.iter().map(Record::key).collect();
        prop_assert_eq!(store.len(), distinct.len());
        let total: u64 = store.per_day().iter().map(|d| d.new_records + d.repeated_records).sum();
        prop_assert_eq!(total, days * records.len() as u64);
        let new_total: u64 = store.per_day().iter().map(|d| d.new_records).sum();
        prop_assert_eq!(new_total as usize, distinct.len());
        // First-seen is day 0 for everything (all appeared on day 0).
        for (key, first) in store.iter() {
            prop_assert_eq!(first, 0, "{} first seen {}", key, first);
        }
    }

    /// Wildcard aggregation never increases the stored-entry count and
    /// conserves the record partition.
    #[test]
    fn aggregation_never_grows(records in proptest::collection::vec(arb_record(), 1..60)) {
        let mut agg = WildcardAggregator::new();
        // Rule over a zone built from the first record (if deep enough).
        if let Some(zone) = records[0].name.parent() {
            if zone.depth() >= 1 {
                agg.add_rule(zone, records[0].name.depth());
            }
        }
        let keys: Vec<RrKey> = records.iter().map(Record::key).collect();
        let distinct: std::collections::HashSet<&RrKey> = keys.iter().collect();
        let outcome = agg.aggregate(distinct.iter().copied());
        prop_assert_eq!(
            outcome.aggregated_records + outcome.passthrough_records,
            distinct.len() as u64
        );
        prop_assert!(outcome.stored_entries() <= distinct.len() as u64);
        prop_assert!(outcome.wildcard_entries <= outcome.aggregated_records);
        prop_assert!((0.0..=1.0).contains(&outcome.reduction_ratio()));
    }

    /// The fpDNS log's counters always reconcile: records ≤ responses ×
    /// max answer size, storage grows monotonically, wire round-trips are
    /// lossless for generated traffic.
    #[test]
    fn fpdns_counters_reconcile(batches in proptest::collection::vec(proptest::collection::vec(arb_record(), 0..4), 1..30)) {
        let mut log = FpDnsLog::new(10, true);
        let qname: Name = "probe.example.com".parse().unwrap();
        let mut expected_records = 0u64;
        let mut expected_nx = 0u64;
        for (i, answers) in batches.iter().enumerate() {
            log.collect(Timestamp::from_secs(i as u64), i as u64, &qname, QType::A, answers);
            expected_records += answers.len() as u64;
            if answers.is_empty() {
                expected_nx += 1;
            }
        }
        prop_assert_eq!(log.total_records(), expected_records);
        prop_assert_eq!(log.total_responses(), batches.len() as u64);
        prop_assert_eq!(log.nx_responses(), expected_nx);
        prop_assert_eq!(log.wire_parse_failures(), 0);
        prop_assert!(log.retained().len() <= 10);
    }
}
