//! Property-based tests for passive-DNS invariants.

use dnsnoise_dns::{Name, QType, RData, Record, RrKey, Timestamp, Ttl};
use dnsnoise_pdns::{FpDnsLog, RpDns, WildcardAggregator};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::string::string_regex("[a-z0-9]{1,8}(\\.[a-z0-9]{1,8}){1,4}").unwrap(),
        any::<[u8; 4]>(),
        0u32..10_000,
    )
        .prop_map(|(name, ip, ttl)| {
            Record::new(
                name.parse::<Name>().unwrap(),
                QType::A,
                Ttl::from_secs(ttl),
                RData::A(Ipv4Addr::from(ip)),
            )
        })
}

proptest! {
    /// rpDNS dedup is idempotent: replaying the same records never grows
    /// the store, and per-day counters conserve total observations.
    #[test]
    fn rpdns_dedup_idempotent(records in proptest::collection::vec(arb_record(), 1..60), days in 1u64..5) {
        let mut store = RpDns::new();
        for day in 0..days {
            for r in &records {
                store.observe(r, day);
            }
        }
        let distinct: std::collections::HashSet<RrKey> = records.iter().map(Record::key).collect();
        prop_assert_eq!(store.len(), distinct.len());
        let total: u64 = store.per_day().iter().map(|d| d.new_records + d.repeated_records).sum();
        prop_assert_eq!(total, days * records.len() as u64);
        let new_total: u64 = store.per_day().iter().map(|d| d.new_records).sum();
        prop_assert_eq!(new_total as usize, distinct.len());
        // First-seen is day 0 for everything (all appeared on day 0).
        for (key, first) in store.iter() {
            prop_assert_eq!(first, 0, "{} first seen {}", key, first);
        }
    }

    /// Wildcard aggregation never increases the stored-entry count and
    /// conserves the record partition.
    #[test]
    fn aggregation_never_grows(records in proptest::collection::vec(arb_record(), 1..60)) {
        let mut agg = WildcardAggregator::new();
        // Rule over a zone built from the first record (if deep enough).
        if let Some(zone) = records[0].name.parent() {
            if zone.depth() >= 1 {
                agg.add_rule(zone, records[0].name.depth());
            }
        }
        let keys: Vec<RrKey> = records.iter().map(Record::key).collect();
        let distinct: std::collections::HashSet<&RrKey> = keys.iter().collect();
        let outcome = agg.aggregate(distinct.iter().copied());
        prop_assert_eq!(
            outcome.aggregated_records + outcome.passthrough_records,
            distinct.len() as u64
        );
        prop_assert!(outcome.stored_entries() <= distinct.len() as u64);
        prop_assert!(outcome.wildcard_entries <= outcome.aggregated_records);
        prop_assert!((0.0..=1.0).contains(&outcome.reduction_ratio()));
    }

    /// The fpDNS log's counters always reconcile: records ≤ responses ×
    /// max answer size, storage grows monotonically, wire round-trips are
    /// lossless for generated traffic.
    #[test]
    fn fpdns_counters_reconcile(batches in proptest::collection::vec(proptest::collection::vec(arb_record(), 0..4), 1..30)) {
        let mut log = FpDnsLog::new(10, true);
        let qname: Name = "probe.example.com".parse().unwrap();
        let mut expected_records = 0u64;
        let mut expected_nx = 0u64;
        for (i, answers) in batches.iter().enumerate() {
            log.collect(Timestamp::from_secs(i as u64), i as u64, &qname, QType::A, answers);
            expected_records += answers.len() as u64;
            if answers.is_empty() {
                expected_nx += 1;
            }
        }
        prop_assert_eq!(log.total_records(), expected_records);
        prop_assert_eq!(log.total_responses(), batches.len() as u64);
        prop_assert_eq!(log.nx_responses(), expected_nx);
        prop_assert_eq!(log.wire_parse_failures(), 0);
        prop_assert!(log.retained().len() <= 10);
    }
}
