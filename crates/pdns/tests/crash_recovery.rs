//! Crash-at-every-IO-point recovery: for *every* syscall site the
//! persistence layer touches during a workload — and for both clean and
//! torn failure modes — a simulated crash followed by `RunStore::open`
//! must recover a consistent durable prefix, and replaying the remaining
//! events must converge to the exact same observable state as an
//! uninterrupted run.

use dnsnoise_dns::{Name, QType, RData, Record, RrKey, Ttl};
use dnsnoise_pdns::store::io::failpoints;
use dnsnoise_pdns::{fsck, DailyNewRrs, RunStore, StoreConfig};
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// Tiny tiers so a ~200-event workload exercises many flushes,
/// compactions, and manifest swaps.
fn tiny_config() -> StoreConfig {
    StoreConfig { memtable_cap: 8, fanout: 2, ..StoreConfig::default() }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsnoise-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic workload with duplicate keys across three days.
fn workload() -> Vec<(Record, u64)> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..200)
        .map(|i| {
            let name: Name = format!("h{}.z{}.example", next() % 40, next() % 6).parse().unwrap();
            let rdata = RData::A(Ipv4Addr::from((next() % 8) as u32 + 0x0a00_0001));
            (Record::new(name, QType::A, Ttl::from_secs(300), rdata), i as u64 / 70)
        })
        .collect()
}

/// Runs `events` through a store opened at `dir` and collapses it.
fn run_workload(dir: &PathBuf, events: &[(Record, u64)]) -> RunStore {
    let mut store = RunStore::open(dir, tiny_config()).expect("open");
    for (record, day) in events {
        store.observe(record, *day);
    }
    store.optimize();
    store
}

/// The observable state the crash matrix compares.
fn observation(store: &RunStore) -> (Vec<(RrKey, u64)>, Vec<DailyNewRrs>, usize, u64) {
    (store.scan_prefix(&Name::root()), store.per_day().to_vec(), store.len(), store.storage_bytes())
}

#[test]
fn every_io_site_crash_recovers_to_the_uninterrupted_state() {
    let events = workload();

    // Reference: the uninterrupted run.
    let ref_dir = temp_dir("reference");
    let reference = observation(&run_workload(&ref_dir, &events));
    std::fs::remove_dir_all(&ref_dir).ok();

    // Count the IO sites the workload visits without tripping any —
    // armed over exactly the span the matrix below arms (post-open).
    let count_dir = temp_dir("count");
    let mut counter = RunStore::open(&count_dir, tiny_config()).expect("open");
    failpoints::arm(u64::MAX, false);
    for (record, day) in &events {
        counter.observe(record, *day);
    }
    counter.optimize();
    let sites = failpoints::disarm();
    drop(counter);
    std::fs::remove_dir_all(&count_dir).ok();
    assert!(sites > 20, "the workload must exercise many IO sites, saw {sites}");

    for torn in [false, true] {
        for k in 0..sites {
            let dir = temp_dir("matrix");

            // Crash the simulated process at site `k`: every IO from
            // there on fails, errors latch, and the store degrades to
            // memory-only until we drop it on the floor.
            let mut victim = RunStore::open(&dir, tiny_config()).expect("pre-crash open");
            failpoints::arm(k, torn);
            for (record, day) in &events {
                victim.observe(record, *day);
            }
            victim.optimize();
            failpoints::disarm();
            // (No latch assertion: a tripped best-effort site — e.g. a
            // post-publish stale-run delete — is deliberately benign.)
            drop(victim);

            // Recovery: open sees a consistent durable prefix...
            let mut recovered = RunStore::open(&dir, tiny_config()).unwrap_or_else(|e| {
                panic!("open after crash at site {k} (torn={torn}) failed: {e}")
            });
            let resume_from = recovered.observed() as usize;
            assert!(
                resume_from <= events.len(),
                "site {k}: durable prefix {resume_from} exceeds the workload"
            );
            let report = recovered.recovery().expect("open records its scan").clone();
            assert!(report.conserves(), "site {k}: {}", report.conservation_line());
            assert_eq!(
                report.bad_checksum.files + report.bad_layout.files + report.missing.files,
                0,
                "site {k} (torn={torn}): a clean crash must never corrupt published runs:\n{}",
                report.render()
            );

            // ...and replaying the rest of the events converges on the
            // uninterrupted run, byte-counter for byte-counter.
            for (record, day) in &events[resume_from..] {
                recovered.observe(record, *day);
            }
            recovered.optimize();
            assert!(recovered.io_error().is_none(), "site {k}: replay must run clean");
            assert_eq!(
                observation(&recovered),
                reference,
                "site {k} (torn={torn}): replayed state diverged"
            );

            // The healed directory passes fsck with zero problems.
            let check = fsck(&dir, false).expect("fsck runs");
            assert!(
                check.is_clean(),
                "site {k} (torn={torn}): fsck found problems:\n{}",
                check.render()
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn bit_flipped_run_is_quarantined_with_exact_accounting() {
    let events = workload();
    let dir = temp_dir("bitflip");
    let healthy = run_workload(&dir, &events);
    let total = healthy.len();
    drop(healthy);

    // Flip one byte in the middle of the (single, optimized) run file.
    let run_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("run-")))
        .expect("an optimized run file exists");
    let mut bytes = std::fs::read(&run_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&run_path, &bytes).unwrap();

    // fsck (read-only) sees the corruption and byte conservation holds.
    let check = fsck(&dir, false).expect("fsck runs");
    assert!(!check.is_clean());
    assert_eq!(check.bad_checksum.files, 1, "{}", check.render());
    assert_eq!(check.bad_checksum.bytes, bytes.len() as u64);
    assert!(check.conserves(), "{}", check.conservation_line());

    // Open quarantines the run (the bytes survive under a new name, and
    // the typed ledger + quarantine.log record the loss) and the store
    // keeps working without the lost records.
    let recovered = RunStore::open(&dir, tiny_config()).expect("lossy open succeeds");
    let report = recovered.recovery().expect("scan recorded");
    assert_eq!(report.bad_checksum.files, 1);
    assert!(report.conserves());
    assert!(recovered.len() < total, "the quarantined run's records are gone");
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
        .filter(|n| n.ends_with(".quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "corrupt bytes preserved for diagnosis");
    let ledger = std::fs::read_to_string(dir.join("quarantine.log")).expect("ledger appended");
    assert!(ledger.contains("bad-run-checksum"), "{ledger}");

    // Replaying the full workload restores every record.
    let mut recovered = recovered;
    for (record, day) in &events {
        recovered.observe(record, *day);
    }
    recovered.optimize();
    assert_eq!(recovered.len(), total, "replay restores the lost records");
    std::fs::remove_dir_all(&dir).ok();
}
