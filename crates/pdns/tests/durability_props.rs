//! Total-parser properties for the durable file formats: run images and
//! manifests must round-trip bit-exactly, and every truncation, bit
//! flip, or arbitrary byte string must come back as `Err` — never a
//! panic, never a silently wrong value.

use dnsnoise_dns::{Name, QType, RData};
use dnsnoise_pdns::store::keys::{encode_key, CompositeKey};
use dnsnoise_pdns::store::manifest::{Manifest, RunFileMeta};
use dnsnoise_pdns::store::run::Run;
use dnsnoise_pdns::DailyNewRrs;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const EPSILON: u32 = 16;

/// Sorted, deduplicated composite-key entries — the invariant the engine
/// upholds before any run is built.
fn arb_entries() -> impl Strategy<Value = Vec<(CompositeKey, u64)>> {
    proptest::collection::vec(
        (
            proptest::string::string_regex("[a-z0-9]{1,6}(\\.[a-z0-9]{1,6}){1,3}").unwrap(),
            any::<[u8; 4]>(),
            0u64..7,
        ),
        1..24,
    )
    .prop_map(|raw| {
        let mut entries: Vec<(CompositeKey, u64)> = raw
            .into_iter()
            .map(|(name, ip, day)| {
                let name: Name = name.parse().unwrap();
                (encode_key(&name, QType::A, &RData::A(Ipv4Addr::from(ip))), day)
            })
            .collect();
        entries.sort();
        entries.dedup_by(|a, b| a.0 == b.0);
        entries
    })
}

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    (
        proptest::collection::vec(any::<u64>(), 9..10),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..5),
        proptest::collection::vec(
            (
                proptest::string::string_regex("run-[0-9a-f]{8}\\.bin").unwrap(),
                any::<u64>(),
                any::<u32>(),
            ),
            0..5,
        ),
    )
        .prop_map(|(f, per_day, runs)| Manifest {
            seq: f[0],
            memtable_cap: f[1],
            fanout: f[2],
            epsilon: f[3] as u32,
            next_run_id: f[4],
            observed: f[5],
            storage_bytes: f[6],
            flushes: f[7],
            compactions: f[8],
            per_day: per_day
                .into_iter()
                .map(|(n, r)| DailyNewRrs { new_records: n, repeated_records: r })
                .collect(),
            runs: runs.into_iter().map(|(name, len, crc)| RunFileMeta { name, len, crc }).collect(),
        })
}

proptest! {
    /// `Run::to_bytes` → `Run::from_bytes` is the identity on the wire
    /// image, and no mutation of the image survives the checksum gates:
    /// every truncation and every sampled bit flip is rejected.
    #[test]
    fn run_image_roundtrips_and_rejects_every_mutation(entries in arb_entries()) {
        let run = Run::build(entries, EPSILON);
        let bytes = run.to_bytes();
        let reparsed = Run::from_bytes(&bytes, EPSILON).expect("pristine image parses");
        prop_assert_eq!(reparsed.to_bytes(), bytes.clone(), "round-trip is bit-exact");
        prop_assert_eq!(reparsed.len(), run.len());

        for cut in 0..bytes.len() {
            prop_assert!(
                Run::from_bytes(&bytes[..cut], EPSILON).is_err(),
                "truncation to {} bytes must be rejected", cut
            );
        }
        for at in (0..bytes.len()).step_by(3) {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x10;
            prop_assert!(
                Run::from_bytes(&flipped, EPSILON).is_err(),
                "bit flip at byte {} must be rejected", at
            );
        }
    }

    /// The same totality properties for the manifest format.
    #[test]
    fn manifest_roundtrips_and_rejects_every_mutation(manifest in arb_manifest()) {
        let bytes = manifest.to_bytes();
        let reparsed = Manifest::from_bytes(&bytes).expect("pristine manifest parses");
        prop_assert_eq!(reparsed, manifest, "round-trip is field-exact");

        for cut in 0..bytes.len() {
            prop_assert!(
                Manifest::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {} bytes must be rejected", cut
            );
        }
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x01;
            prop_assert!(
                Manifest::from_bytes(&flipped).is_err(),
                "bit flip at byte {} must be rejected", at
            );
        }
    }

    /// Arbitrary byte strings — including ones that start with the right
    /// magic — never panic either parser.
    #[test]
    fn arbitrary_bytes_never_panic(
        mut bytes in proptest::collection::vec(any::<u8>(), 0..512),
        with_run_magic in any::<bool>(),
        with_manifest_magic in any::<bool>(),
    ) {
        let _ = Run::from_bytes(&bytes, EPSILON);
        let _ = Manifest::from_bytes(&bytes);
        if with_run_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"dnrun02\n");
            let _ = Run::from_bytes(&bytes, EPSILON);
        }
        if with_manifest_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"dnman01\n");
            let _ = Manifest::from_bytes(&bytes);
        }
    }
}
