//! Streaming online miner for disposable-domain detection.
//!
//! The batch pipeline materialises a whole day of per-record statistics
//! before mining. This crate replays the *same* per-event resolver logic
//! incrementally — one [`QueryEvent`](dnsnoise_workload::QueryEvent) at a
//! time — while keeping per-record counters in bounded-memory sketches:
//! a seeded [`CountMinSketch`] per volume counter and a [`HyperLogLog`]
//! per cardinality. Periodic epoch closes emit mid-day classifications;
//! [`StreamMiner::finish`] emits the end-of-day report.
//!
//! Everything is deterministic: hashes are seeded, iteration orders are
//! sorted, and with sketches sized above the distinct-record count the
//! streaming classifications equal the batch miner's exactly (a property
//! the fidelity test suite pins).
//!
//! # Examples
//!
//! ```
//! use dnsnoise_core::{DailyPipeline, MinerConfig};
//! use dnsnoise_stream::{StreamConfig, StreamMiner};
//! use dnsnoise_workload::{Scenario, ScenarioConfig};
//!
//! let s = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.02), 7);
//! let mut pipeline = DailyPipeline::new(MinerConfig::default());
//! let _ = pipeline.run_day(&s, 0); // offline training
//! let miner = pipeline.into_miner().expect("trained");
//!
//! let mut stream = StreamMiner::new(StreamConfig::default(), &miner);
//! for event in &s.generate_day(1).events {
//!     stream.push(event); // one event at a time, bounded state
//! }
//! let (report, _sim) = stream.finish();
//! assert!(report.conserves());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod engine;
mod pipeline;
mod sketch;

pub use checkpoint::{Checkpoint, CHECKPOINT_NAME};
pub use engine::{
    EpochSummary, PdnsSummary, RpdnsStoreSummary, StreamConfig, StreamMiner, StreamReport,
    PDNS_RETAIN,
};
pub use pipeline::StreamPipeline;
pub use sketch::{CountMinSketch, HyperLogLog};
