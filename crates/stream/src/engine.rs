//! The incremental miner: one event in, bounded state, classifications
//! out at every epoch close.
//!
//! A [`StreamMiner`] drives three online structures from a single
//! [`EventSession`] replay:
//!
//! * the **name registry** — a `BTreeMap` from each observed owner name
//!   to the 8-byte fingerprints of its resource records. This is the only
//!   per-name state; unlike the batch path's `HashMap<RrKey, RrStat>`,
//!   each name is stored once instead of once per `(name, qtype, rdata)`
//!   triple, and per-record counters live in the fixed-size sketches;
//! * two **count-min sketches** — below-the-recursives query counts and
//!   above-the-recursives miss counts per record fingerprint, from which
//!   the paper's domain hit rate (Eq. 1) is recovered at epoch close;
//! * two **HyperLogLogs** — distinct clients and distinct owner names.
//!
//! At each epoch boundary (and at [`StreamMiner::finish`]) the registry
//! and sketches are folded into a fresh [`DomainTree`] snapshot and the
//! trained classifier runs Algorithm 1 over it. Snapshots are
//! non-destructive: closing an epoch mid-stream and resuming is
//! indistinguishable from an uninterrupted run.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dnsnoise_core::{DomainTree, Finding, Miner, MiningReport};
use dnsnoise_dns::{Name, Record, SuffixList};
use dnsnoise_pdns::store::io;
use dnsnoise_pdns::{BackendKind, FpDnsLog, PdnsBackend, PdnsStore, StoreError};
use dnsnoise_resolver::{DayReport, EventSession, Observer, ResolverSim, Served, SimConfig};
use dnsnoise_workload::{GroundTruth, QueryEvent};

use crate::checkpoint::Checkpoint;
use crate::sketch::{fnv1a, CountMinSketch, HyperLogLog};

/// How many fpDNS records the streaming collector retains as samples.
/// Aggregate pDNS counters are exact regardless.
pub const PDNS_RETAIN: usize = 512;

/// Modeled per-name overhead of one registry entry beyond the name text
/// and its fingerprint vector: tree-map node bookkeeping plus the vector
/// header.
const REGISTRY_NODE_BYTES: usize = 72;

/// Seed decorrelators for the second count-min sketch and the name HLL;
/// shared with checkpoint restore so a resumed miner rebuilds the exact
/// sketches.
pub(crate) const CM_MISSES_SEED_XOR: u64 = 0x517c_c1b7_2722_0a95;
pub(crate) const HLL_NAMES_SEED_XOR: u64 = 0x2545_f491_4f6c_dd1d;

/// Streaming miner knobs. All sketch parameters trade memory for
/// accuracy; the defaults keep the seeded reference day collision-free
/// (see DESIGN.md §streaming-miner).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Seconds per classification epoch (default 21 600 — four mid-day
    /// closes per day).
    pub epoch_secs: u64,
    /// Count-min row width (default 16 384 counters).
    pub cm_width: usize,
    /// Count-min rows (default 4).
    pub cm_depth: usize,
    /// HyperLogLog precision `p`; `2^p` registers (default 12).
    pub hll_precision: u8,
    /// Hash seed for every sketch.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            epoch_secs: 21_600,
            cm_width: 16_384,
            cm_depth: 4,
            hll_precision: 12,
            seed: 7,
        }
    }
}

/// One epoch-close classification snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSummary {
    /// Zero-based epoch index within the day.
    pub epoch: u64,
    /// Second-of-day this epoch ends at (exclusive).
    pub end_secs: u64,
    /// Cumulative events pushed when the epoch closed.
    pub events: u64,
    /// Algorithm 1 findings over the day-so-far tree.
    pub findings: Vec<Finding>,
    /// Exact distinct owner names in the registry.
    pub distinct_names: u64,
    /// HyperLogLog estimate of distinct owner names.
    pub distinct_names_est: u64,
    /// HyperLogLog estimate of distinct clients.
    pub distinct_clients_est: u64,
    /// Resident streaming state at close, in bytes.
    pub state_bytes: usize,
}

/// End-of-day summary of the deduplicating rpDNS backend the stream fed
/// (the `--store` engine). Not part of the rendered golden report — the
/// report format predates the pluggable store — but surfaced so the CLI
/// can print it out of band and smoke tests can compare backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpdnsStoreSummary {
    /// Which backend collected the reduced pDNS dataset.
    pub backend: BackendKind,
    /// Distinct records stored.
    pub records: u64,
    /// Modeled rpDNS storage bytes.
    pub storage_bytes: u64,
    /// Sorted runs at end of day (0 for the memory backend).
    pub runs: u64,
    /// Runs served by a learned (PLA) index.
    pub learned_runs: u64,
}

/// Aggregate pDNS counters collected online.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PdnsSummary {
    /// Responses collected (answers and NXDOMAINs).
    pub total_responses: u64,
    /// Resource records across those responses.
    pub total_records: u64,
    /// NXDOMAIN responses.
    pub nx_responses: u64,
    /// Modeled storage the full fpDNS log would occupy.
    pub storage_bytes: u64,
}

/// The end-of-day output of a [`StreamMiner`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Zero-based day.
    pub day: u64,
    /// Epoch length used.
    pub epoch_secs: u64,
    /// Count-min geometry, for the report header.
    pub cm_width: usize,
    /// Count-min rows.
    pub cm_depth: usize,
    /// HyperLogLog precision.
    pub hll_precision: u8,
    /// Mid-day classification snapshots, in close order.
    pub epochs: Vec<EpochSummary>,
    /// End-of-day Algorithm 1 findings.
    pub final_findings: Vec<Finding>,
    /// The resolver-side day report (traffic, cache, per-RR exact stats
    /// are *not* kept — that is the point of the sketches).
    pub day_report: DayReport,
    /// Ground-truth evaluation of the final findings, when ground truth
    /// was attached.
    pub mining: Option<MiningReport>,
    /// Online pDNS counters.
    pub pdns: PdnsSummary,
    /// The deduplicating rpDNS backend's end-of-day summary.
    pub rpdns_store: RpdnsStoreSummary,
    /// The first persistence failure the rpDNS backend latched, if any
    /// (rendered message). The backend degraded to memory-only — counters
    /// stay exact, the on-disk mirror is stale — and the CLI surfaces
    /// this as a non-zero exit. Not part of [`StreamReport::render`],
    /// which stays byte-identical across healthy backends.
    pub rpdns_store_error: Option<String>,
    /// Events pushed into the session.
    pub events_pushed: u64,
    /// Events answered with records.
    pub events_answered: u64,
    /// NXDOMAIN responses.
    pub events_nxdomain: u64,
    /// SERVFAIL responses.
    pub events_failed: u64,
    /// Queries shed by admission control (always 0: the streaming
    /// session runs without an overload stage).
    pub events_shed: u64,
    /// Exact distinct owner names at end of day.
    pub distinct_names: u64,
    /// HLL estimate of distinct owner names.
    pub distinct_names_est: u64,
    /// HLL estimate of distinct clients.
    pub distinct_clients_est: u64,
    /// Largest resident state observed at any point of the day.
    pub peak_state_bytes: usize,
}

impl StreamReport {
    /// The event-conservation invariant: every pushed event was answered,
    /// NXDOMAIN'd, SERVFAIL'd, or shed — none silently vanished.
    pub fn conserves(&self) -> bool {
        self.events_pushed
            == self.events_answered + self.events_nxdomain + self.events_failed + self.events_shed
    }

    /// The conservation line, in the same spirit as the ingest ledger's
    /// byte-conservation line.
    pub fn conservation_line(&self) -> String {
        format!(
            "events: {} pushed = {} answered + {} nxdomain + {} servfail + {} shed ({})",
            self.events_pushed,
            self.events_answered,
            self.events_nxdomain,
            self.events_failed,
            self.events_shed,
            if self.conserves() { "conserved" } else { "NOT CONSERVED" },
        )
    }

    /// Renders the whole report as deterministic `key = value` text: the
    /// golden-snapshot and CLI format. Byte-identical across runs for the
    /// same trace and configuration.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("day = {}", self.day));
        line(format!("epoch_secs = {}", self.epoch_secs));
        line(format!("cm = {}x{}", self.cm_width, self.cm_depth));
        line(format!("hll_precision = {}", self.hll_precision));
        for e in &self.epochs {
            line(format!("-- epoch {} (close @ {}s, {} events) --", e.epoch, e.end_secs, e.events));
            line(format!("state_bytes = {}", e.state_bytes));
            line(format!("distinct_names = {} (hll {})", e.distinct_names, e.distinct_names_est));
            line(format!("distinct_clients_hll = {}", e.distinct_clients_est));
            line(format!("findings = {}", e.findings.len()));
            for f in &e.findings {
                line(render_finding(f));
            }
        }
        line("-- final --".to_string());
        line(format!("events = {}", self.events_pushed));
        line(format!("distinct_names = {} (hll {})", self.distinct_names, self.distinct_names_est));
        line(format!("distinct_clients_hll = {}", self.distinct_clients_est));
        line(format!("peak_state_bytes = {}", self.peak_state_bytes));
        line(format!(
            "pdns = {} responses / {} records / {} nx / {} bytes",
            self.pdns.total_responses,
            self.pdns.total_records,
            self.pdns.nx_responses,
            self.pdns.storage_bytes
        ));
        line(format!("below_total = {}", self.day_report.below_total));
        line(format!("above_total = {}", self.day_report.above_total));
        line(format!("cache.hits = {}", self.day_report.cache.hits));
        line(format!("cache.misses = {}", self.day_report.cache.misses));
        line(format!("findings = {}", self.final_findings.len()));
        for f in &self.final_findings {
            line(render_finding(f));
        }
        let _ = write!(out, "{}", self.conservation_line());
        out.push('\n');
        out
    }

    /// The final findings as the same TSV body `dnsnoise mine` prints,
    /// sorted by confidence descending (ties by zone), so batch and
    /// stream outputs can be diffed directly.
    pub fn findings_tsv(&self) -> String {
        let mut rows: Vec<&Finding> = self.final_findings.iter().collect();
        rows.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("confidence is finite")
                .then_with(|| a.zone.cmp(&b.zone))
                .then(a.depth.cmp(&b.depth))
        });
        let mut out = String::new();
        for f in rows {
            out.push_str(&format!("{}\t{}\t{:.4}\t{}\n", f.zone, f.depth, f.confidence, f.members));
        }
        out
    }
}

fn render_finding(f: &Finding) -> String {
    format!(
        "finding = {} depth={} confidence={:.6} members={}",
        f.zone, f.depth, f.confidence, f.members
    )
}

/// The online statistics the observer accumulates: name registry,
/// sketches, pDNS counters, and the served-class tallies behind the
/// conservation line.
#[derive(Debug)]
pub(crate) struct StreamState {
    /// Owner name → fingerprints of its records, in first-seen order.
    pub(crate) names: BTreeMap<Name, Vec<u64>>,
    pub(crate) cm_queries: CountMinSketch,
    pub(crate) cm_misses: CountMinSketch,
    pub(crate) hll_clients: HyperLogLog,
    pub(crate) hll_names: HyperLogLog,
    pub(crate) pdns: FpDnsLog,
    /// The deduplicating rpDNS store behind the `--store` flag. Excluded
    /// from [`StreamState::state_bytes`]: the paper's streaming-state
    /// budget covers the registry and sketches, and the store's own
    /// footprint is reported separately as rpDNS storage bytes.
    pub(crate) rpdns: PdnsBackend,
    pub(crate) answered: u64,
    pub(crate) nxdomain: u64,
    pub(crate) failed: u64,
    pub(crate) shed: u64,
    /// Incrementally-maintained registry footprint (names + overhead +
    /// fingerprints), excluding the fixed-size sketches.
    pub(crate) registry_bytes: usize,
}

impl StreamState {
    fn new(config: &StreamConfig) -> StreamState {
        StreamState {
            names: BTreeMap::new(),
            cm_queries: CountMinSketch::new(config.cm_width, config.cm_depth, config.seed),
            cm_misses: CountMinSketch::new(
                config.cm_width,
                config.cm_depth,
                config.seed ^ CM_MISSES_SEED_XOR,
            ),
            hll_clients: HyperLogLog::new(config.hll_precision, config.seed),
            hll_names: HyperLogLog::new(config.hll_precision, config.seed ^ HLL_NAMES_SEED_XOR),
            pdns: FpDnsLog::new(PDNS_RETAIN, false),
            rpdns: PdnsBackend::default(),
            answered: 0,
            nxdomain: 0,
            failed: 0,
            shed: 0,
            registry_bytes: 0,
        }
    }

    /// Total resident streaming state in bytes: registry + all sketches.
    pub(crate) fn state_bytes(&self) -> usize {
        self.registry_bytes
            + self.cm_queries.state_bytes()
            + self.cm_misses.state_bytes()
            + self.hll_clients.state_bytes()
            + self.hll_names.state_bytes()
    }

    /// Folds the registry and sketches into a fresh domain tree — the
    /// streaming stand-in for `DomainTree::from_day_stats`. With sketches
    /// sized above the distinct-record count the estimates are exact and
    /// the resulting classifications equal the batch miner's.
    fn build_tree(&self) -> DomainTree {
        let mut tree = DomainTree::new();
        for (name, fps) in &self.names {
            for &fp in fps {
                let q = self.cm_queries.estimate(fp).max(1);
                // Both counters overestimate independently; a record is
                // never seen above more often than below, so clamp.
                let m = self.cm_misses.estimate(fp).min(q);
                let dhr = (q - m) as f64 / q as f64;
                tree.observe(name, dhr, u32::try_from(m).unwrap_or(u32::MAX));
            }
        }
        tree
    }
}

impl Observer for StreamState {
    fn observe(&mut self, event: &QueryEvent, served: Served, answers: &[Record]) {
        if served.is_shed() {
            self.shed += 1;
            return;
        }
        if served.is_failure() {
            self.failed += 1;
            return;
        }
        self.hll_clients.insert(event.client);
        if served.is_nxdomain() {
            self.nxdomain += 1;
            // Empty answer section marks the response NXDOMAIN in fpDNS.
            self.pdns.collect(event.time, event.client, &event.name, event.qtype, &[]);
            return;
        }
        self.answered += 1;
        self.pdns.collect(event.time, event.client, &event.name, event.qtype, answers);
        let day = event.time.day();
        let above = served.went_above();
        for rr in answers {
            self.rpdns.observe(rr, day);
            let fp = fnv1a(rr.key().to_string().as_bytes());
            let fps = match self.names.get_mut(&rr.name) {
                Some(fps) => fps,
                None => {
                    self.registry_bytes += rr.name.presentation_len() + REGISTRY_NODE_BYTES;
                    self.hll_names.insert(fnv1a(rr.name.to_string().as_bytes()));
                    self.names.entry(rr.name.clone()).or_default()
                }
            };
            if !fps.contains(&fp) {
                fps.push(fp);
                self.registry_bytes += std::mem::size_of::<u64>();
            }
            self.cm_queries.add(fp, 1);
            if above {
                self.cm_misses.add(fp, 1);
            }
        }
    }
}

/// The streaming online miner: feed it one [`QueryEvent`] at a time with
/// [`StreamMiner::push`]; epochs close automatically as event timestamps
/// cross epoch boundaries, and [`StreamMiner::finish`] produces the
/// end-of-day [`StreamReport`].
///
/// The classifier is trained *before* deployment (the paper trains once
/// on seed days, then mines daily), so the miner borrows an
/// already-trained [`Miner`].
#[derive(Debug)]
pub struct StreamMiner<'m> {
    config: StreamConfig,
    miner: &'m Miner,
    psl: SuffixList,
    ground_truth: Option<&'m GroundTruth>,
    session: EventSession,
    state: StreamState,
    current_epoch: Option<u64>,
    epochs: Vec<EpochSummary>,
    peak_state_bytes: usize,
    pushed: u64,
    /// The day the session streams; updated from the first event.
    day: u64,
    /// Whether the first event has named the day yet ([`StreamMiner::push`]
    /// for a fresh session, [`StreamMiner::resume`] for a restored one).
    session_started: bool,
    /// Where epoch-boundary checkpoints are written, when enabled.
    checkpoint_dir: Option<PathBuf>,
    /// First checkpoint-write failure, latched; checkpointing stops but
    /// the in-memory stream continues exactly.
    checkpoint_error: Option<StoreError>,
}

impl<'m> StreamMiner<'m> {
    /// Creates a miner over a fresh default cluster, streaming day 0.
    pub fn new(config: StreamConfig, miner: &'m Miner) -> StreamMiner<'m> {
        StreamMiner::with_sim(config, miner, ResolverSim::new(SimConfig::default()), 0)
    }

    /// Creates a miner over an existing cluster (whose caches carry prior
    /// days' state) for simulated day `day`.
    pub fn with_sim(
        config: StreamConfig,
        miner: &'m Miner,
        sim: ResolverSim,
        day: u64,
    ) -> StreamMiner<'m> {
        assert!(config.epoch_secs > 0, "epoch length must be positive");
        let state = StreamState::new(&config);
        let peak = state.state_bytes();
        StreamMiner {
            config,
            miner,
            psl: SuffixList::builtin(),
            ground_truth: None,
            session: EventSession::new(sim, day),
            state,
            current_epoch: None,
            epochs: Vec::new(),
            peak_state_bytes: peak,
            pushed: 0,
            day,
            session_started: false,
            checkpoint_dir: None,
            checkpoint_error: None,
        }
    }

    /// Attaches ground truth: enables operator attribution in the day
    /// report and ground-truth evaluation of the final findings. Never
    /// visible to the classifier.
    pub fn ground_truth(mut self, gt: &'m GroundTruth) -> StreamMiner<'m> {
        self.ground_truth = Some(gt);
        self
    }

    /// Selects the rpDNS backend the stream deduplicates answers into
    /// (the CLI's `--store` flag). Call before pushing events: the
    /// previous backend is replaced along with anything it collected.
    /// Findings and the rendered report are bit-identical across
    /// backends; only [`StreamReport::rpdns_store`] reflects the choice.
    pub fn with_store(mut self, backend: PdnsBackend) -> StreamMiner<'m> {
        self.state.rpdns = backend;
        self
    }

    /// Enables epoch-boundary checkpointing under `dir` (the CLI's
    /// `stream --checkpoint` flag): each time an epoch closes, the full
    /// miner state is serialised and atomically swapped into
    /// `dir/checkpoint.bin`, so a killed process can [`StreamMiner::resume`]
    /// from the last boundary instead of the start of the day. Write
    /// failures latch into [`StreamMiner::checkpoint_error`]; the stream
    /// itself is never perturbed.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> StreamMiner<'m> {
        let dir = dir.into();
        if let Err(e) = io::create_dir_all(&dir) {
            self.checkpoint_error = Some(e);
        }
        self.checkpoint_dir = Some(dir);
        self
    }

    /// Streams one event: closes any epoch the event's timestamp has
    /// moved past, then replays the event through the cluster and folds
    /// the response into the online state.
    pub fn push(&mut self, event: &QueryEvent) {
        if !self.session_started {
            // The stream itself names the day (a stdin-fed miner cannot
            // know it up front); for well-formed traces this agrees with
            // the day passed to `with_sim`.
            self.session_started = true;
            self.day = event.time.day();
            self.session.set_day(self.day);
        }
        let epoch = event.time.second_of_day() / self.config.epoch_secs;
        if let Some(current) = self.current_epoch {
            if epoch > current {
                self.close_epoch(current);
                // Checkpoint at the boundary, before this event counts:
                // a resumed process replays the first `pushed` events as
                // warmup and re-pushes everything after, this event
                // included.
                self.current_epoch = Some(epoch);
                self.write_checkpoint();
            }
        }
        self.current_epoch = Some(epoch.max(self.current_epoch.unwrap_or(0)));
        self.pushed += 1;
        self.session.push(event, self.ground_truth, &mut self.state);
        let resident = self.state.state_bytes();
        if resident > self.peak_state_bytes {
            self.peak_state_bytes = resident;
        }
    }

    /// Events streamed so far.
    pub fn events_pushed(&self) -> u64 {
        self.pushed
    }

    /// Current resident streaming state in bytes.
    pub fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }

    /// Largest resident state observed so far.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_state_bytes
    }

    /// The first checkpoint-write failure, if any. Once set, no further
    /// checkpoints are attempted; the in-memory stream stays exact.
    pub fn checkpoint_error(&self) -> Option<&StoreError> {
        self.checkpoint_error.as_ref()
    }

    /// Forces a checkpoint write now, mid-epoch (a checkpointing miner
    /// also writes one automatically at every epoch boundary). A no-op
    /// without [`StreamMiner::with_checkpoint`].
    pub fn checkpoint_now(&mut self) {
        self.write_checkpoint();
    }

    fn write_checkpoint(&mut self) {
        if self.checkpoint_error.is_some() {
            return;
        }
        let Some(dir) = self.checkpoint_dir.clone() else { return };
        let ckpt = Checkpoint::capture(
            &self.config,
            self.day,
            self.pushed,
            self.current_epoch,
            self.peak_state_bytes,
            &self.epochs,
            &self.state,
        );
        if let Err(e) = ckpt.save(&dir) {
            self.checkpoint_error = Some(e);
        }
    }

    /// Restores a freshly-built miner to the exact point `ckpt` was
    /// written: the first `ckpt.pushed` events of the day's trace
    /// (`warmup`) are replayed through the resolver session to rebuild
    /// its caches, and every online structure — registry, sketches, pDNS
    /// logs, epoch summaries, the rpDNS backend — is restored from the
    /// checkpoint. Pushing the remaining events and finishing then
    /// produces a report byte-identical to an uninterrupted run.
    ///
    /// Call on a miner built with the same configuration, store backend,
    /// and (for fresh-day streams) the same simulator seed as the
    /// interrupted process, before any events are pushed.
    ///
    /// # Errors
    ///
    /// [`StoreError::ConfigMismatch`] when the checkpoint's configuration
    /// echo contradicts this miner's configuration or backend kind, or
    /// when `warmup` does not cover exactly the checkpointed prefix;
    /// [`StoreError::Corrupt`] when the checkpoint's payload is
    /// internally inconsistent.
    pub fn resume(
        mut self,
        ckpt: &Checkpoint,
        warmup: &[QueryEvent],
    ) -> Result<StreamMiner<'m>, StoreError> {
        ckpt.verify(&self.config, self.state.rpdns.kind())?;
        if warmup.len() as u64 != ckpt.pushed {
            return Err(StoreError::ConfigMismatch {
                detail: format!(
                    "checkpoint replay prefix: checkpoint consumed {} events but {} were supplied",
                    ckpt.pushed,
                    warmup.len()
                ),
            });
        }
        self.state = ckpt.restore_state(&self.config, &self.state.rpdns)?;
        self.day = ckpt.day;
        self.session_started = true;
        self.session.set_day(ckpt.day);
        // Rebuild the resolver session's caches exactly as the
        // interrupted process built them; the unit observer keeps the
        // restored online state untouched.
        for event in warmup {
            self.session.push(event, self.ground_truth, &mut ());
        }
        self.epochs = ckpt.epochs.clone();
        self.pushed = ckpt.pushed;
        self.current_epoch = ckpt.current_epoch;
        self.peak_state_bytes = ckpt.peak_state_bytes;
        Ok(self)
    }

    /// Forces an epoch close now, mid-stream: snapshots the day-so-far
    /// tree and classifies it. Non-destructive — pushing more events and
    /// finishing yields exactly the report an uninterrupted run produces,
    /// with this one extra epoch entry.
    pub fn close_epoch_now(&mut self) {
        let epoch = self.current_epoch.unwrap_or(0);
        self.close_epoch(epoch);
    }

    fn close_epoch(&mut self, epoch: u64) {
        let mut tree = self.state.build_tree();
        let findings = self.miner.mine(&mut tree, &self.psl);
        self.epochs.push(EpochSummary {
            epoch,
            end_secs: (epoch + 1) * self.config.epoch_secs,
            events: self.pushed,
            findings,
            distinct_names: self.state.names.len() as u64,
            distinct_names_est: self.state.hll_names.estimate_rounded(),
            distinct_clients_est: self.state.hll_clients.estimate_rounded(),
            state_bytes: self.state.state_bytes(),
        });
    }

    /// Closes the day: runs the final end-of-day classification, folds
    /// the cache deltas into the day report, and returns the report
    /// together with the simulator for the next day.
    pub fn finish(self) -> (StreamReport, ResolverSim) {
        let StreamMiner {
            config,
            miner,
            psl,
            ground_truth,
            session,
            mut state,
            current_epoch: _,
            epochs,
            peak_state_bytes,
            pushed,
            day: _,
            session_started: _,
            checkpoint_dir: _,
            checkpoint_error: _,
        } = self;
        // Close out the run store: flush and collapse to one optimized
        // run so a spill directory holds the complete, final day image.
        if let PdnsBackend::Disk(ref mut s) = state.rpdns {
            s.optimize();
        }
        let rpdns_store_error = state.rpdns.io_error().map(StoreError::to_string);
        let rpdns_store = {
            let (runs, learned_runs) = match &state.rpdns {
                PdnsBackend::Disk(s) => {
                    let st = s.stats();
                    (st.runs as u64, st.learned_runs as u64)
                }
                PdnsBackend::Memory(_) => (0, 0),
            };
            RpdnsStoreSummary {
                backend: state.rpdns.kind(),
                records: state.rpdns.len() as u64,
                storage_bytes: PdnsStore::storage_bytes(&state.rpdns),
                runs,
                learned_runs,
            }
        };
        let mut tree = state.build_tree();
        let final_findings = miner.mine(&mut tree, &psl);
        let (day_report, sim) = session.finish();
        let mining = ground_truth.map(|gt| {
            // Eligibility bookkeeping needs the pristine (un-decolored)
            // tree, exactly as the batch pipeline rebuilds one.
            let eval_tree = state.build_tree();
            MiningReport::evaluate(
                day_report.day,
                final_findings.clone(),
                &eval_tree,
                gt,
                &psl,
                miner.config().min_group_size,
            )
        });
        let report = StreamReport {
            day: day_report.day,
            epoch_secs: config.epoch_secs,
            cm_width: config.cm_width,
            cm_depth: config.cm_depth,
            hll_precision: config.hll_precision,
            epochs,
            final_findings,
            mining,
            pdns: PdnsSummary {
                total_responses: state.pdns.total_responses(),
                total_records: state.pdns.total_records(),
                nx_responses: state.pdns.nx_responses(),
                storage_bytes: state.pdns.storage_bytes(),
            },
            rpdns_store,
            rpdns_store_error,
            events_pushed: pushed,
            events_answered: state.answered,
            events_nxdomain: state.nxdomain,
            events_failed: state.failed,
            events_shed: state.shed,
            distinct_names: state.names.len() as u64,
            distinct_names_est: state.hll_names.estimate_rounded(),
            distinct_clients_est: state.hll_clients.estimate_rounded(),
            peak_state_bytes,
            day_report,
        };
        (report, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_core::{DailyPipeline, MinerConfig};
    use dnsnoise_workload::{Scenario, ScenarioConfig};

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.05), seed)
    }

    fn trained_miner(scenario: &Scenario) -> Miner {
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let _ = pipeline.run_day(scenario, 0);
        pipeline.into_miner().expect("day 0 trains the model")
    }

    #[test]
    fn stream_day_report_matches_batch_and_conserves() {
        let s = scenario(21);
        let miner = trained_miner(&s);
        let trace = s.generate_day(0);

        let mut stream =
            StreamMiner::new(StreamConfig::default(), &miner).ground_truth(s.ground_truth());
        for event in &trace.events {
            stream.push(event);
        }
        let (report, _) = stream.finish();

        let mut batch = ResolverSim::new(SimConfig::default());
        let expected = batch.day(&trace).ground_truth(s.ground_truth()).run();
        assert_eq!(report.day_report, expected);
        assert!(report.conserves(), "{}", report.conservation_line());
        assert_eq!(report.events_pushed, trace.events.len() as u64);
        assert!(report.events_shed == 0);
        assert!(!report.epochs.is_empty(), "a full day must close epochs");
        assert!(report.pdns.total_responses > 0);
    }

    #[test]
    fn disk_store_backend_reproduces_the_memory_report() {
        let s = scenario(21);
        let miner = trained_miner(&s);
        let trace = s.generate_day(1);
        let mut reports = Vec::new();
        for kind in [BackendKind::Memory, BackendKind::Disk] {
            let mut stream = StreamMiner::new(StreamConfig::default(), &miner)
                .ground_truth(s.ground_truth())
                .with_store(PdnsBackend::create(kind, None));
            for event in &trace.events {
                stream.push(event);
            }
            let (report, _) = stream.finish();
            reports.push(report);
        }
        // The rendered report and findings never depend on the backend…
        assert_eq!(reports[0].render(), reports[1].render());
        assert_eq!(reports[0].findings_tsv(), reports[1].findings_tsv());
        // …and the stores themselves agree on the dedup counters.
        assert_eq!(reports[0].rpdns_store.records, reports[1].rpdns_store.records);
        assert_eq!(reports[0].rpdns_store.storage_bytes, reports[1].rpdns_store.storage_bytes);
        assert_eq!(reports[1].rpdns_store.backend, BackendKind::Disk);
        assert_eq!(reports[1].rpdns_store.runs, 1, "finish() optimizes to one run");
        assert!(reports[0].rpdns_store.records > 0);
    }

    #[test]
    fn oversized_sketches_reproduce_batch_findings_exactly() {
        let s = scenario(21);
        let miner = trained_miner(&s);
        let trace = s.generate_day(1);

        // Batch reference for the same day-1 trace on a fresh cluster.
        let mut sim = ResolverSim::new(SimConfig::default());
        let batch_report = sim.day(&trace).ground_truth(s.ground_truth()).run();
        let mut batch_tree = DomainTree::from_day_stats(&batch_report.rr_stats);
        let batch_findings = miner.mine(&mut batch_tree, &SuffixList::builtin());

        // Width far above the distinct-record count: estimates are exact.
        let config = StreamConfig { cm_width: 1 << 20, ..StreamConfig::default() };
        let mut stream = StreamMiner::new(config, &miner).ground_truth(s.ground_truth());
        for event in &trace.events {
            stream.push(event);
        }
        let (report, _) = stream.finish();

        let mut batch_sorted = batch_findings;
        let mut stream_sorted = report.final_findings.clone();
        let by_zone = |a: &Finding, b: &Finding| a.zone.cmp(&b.zone).then(a.depth.cmp(&b.depth));
        batch_sorted.sort_by(by_zone);
        stream_sorted.sort_by(by_zone);
        assert_eq!(stream_sorted, batch_sorted);
    }

    #[test]
    fn mid_stream_close_does_not_perturb_the_final_report() {
        let s = scenario(33);
        let miner = trained_miner(&s);
        let trace = s.generate_day(0);

        let run = |force_close: bool| {
            let mut stream =
                StreamMiner::new(StreamConfig::default(), &miner).ground_truth(s.ground_truth());
            for (i, event) in trace.events.iter().enumerate() {
                if force_close && i == trace.events.len() / 2 {
                    stream.close_epoch_now();
                }
                stream.push(event);
            }
            stream.finish().0
        };
        let uninterrupted = run(false);
        let resumed = run(true);
        assert_eq!(resumed.final_findings, uninterrupted.final_findings);
        assert_eq!(resumed.day_report, uninterrupted.day_report);
        assert_eq!(resumed.conservation_line(), uninterrupted.conservation_line());
        // The forced close adds exactly one epoch entry and nothing else.
        assert_eq!(resumed.epochs.len(), uninterrupted.epochs.len() + 1);
    }

    #[test]
    fn render_is_stable_across_runs() {
        let s = scenario(5);
        let miner = trained_miner(&s);
        let trace = s.generate_day(0);
        let render = || {
            let mut stream = StreamMiner::new(
                StreamConfig { epoch_secs: 7200, ..StreamConfig::default() },
                &miner,
            );
            for event in &trace.events {
                stream.push(event);
            }
            stream.finish().0.render()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn state_stays_bounded_by_sketches_plus_registry() {
        let s = scenario(9);
        let miner = trained_miner(&s);
        let trace = s.generate_day(0);
        let config = StreamConfig {
            cm_width: 1024,
            cm_depth: 3,
            hll_precision: 8,
            seed: 7,
            epoch_secs: 21_600,
        };
        let fixed = 2 * (1024 * 3 * 8) + 2 * 256;
        let mut stream = StreamMiner::new(config, &miner);
        for event in &trace.events {
            stream.push(event);
        }
        let per_name_ceiling = 300; // name text + node overhead + a few fingerprints
        assert!(
            stream.peak_state_bytes() <= fixed + stream.state.names.len() * per_name_ceiling,
            "peak {} for {} names",
            stream.peak_state_bytes(),
            stream.state.names.len()
        );
    }
}
