//! Day-at-a-time convenience wrapper around [`StreamMiner`]: the
//! streaming counterpart of `dnsnoise_core::DailyPipeline` for the
//! deploy phase, once a classifier has been trained offline.

use std::path::PathBuf;

use dnsnoise_core::Miner;
use dnsnoise_pdns::{BackendKind, PdnsBackend};
use dnsnoise_resolver::{ResolverSim, SimConfig};
use dnsnoise_workload::{DayTrace, GroundTruth, QueryEvent};

use crate::engine::{StreamConfig, StreamMiner, StreamReport};

/// Replays whole days through a [`StreamMiner`], carrying resolver cache
/// state across days exactly as the batch `DailyPipeline` does.
///
/// # Examples
///
/// ```
/// use dnsnoise_core::{DailyPipeline, MinerConfig};
/// use dnsnoise_stream::{StreamConfig, StreamPipeline};
/// use dnsnoise_workload::{Scenario, ScenarioConfig};
///
/// let s = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.02), 7);
/// // Train offline on day 0 with the batch pipeline...
/// let mut pipeline = DailyPipeline::new(MinerConfig::default());
/// let _ = pipeline.run_day(&s, 0);
/// let miner = pipeline.into_miner().expect("trained");
/// // ...then deploy the streaming miner for subsequent days.
/// let mut deployed = StreamPipeline::new(StreamConfig::default(), miner);
/// let trace = s.generate_day(1);
/// let report = deployed.run_trace(&trace, Some(s.ground_truth()));
/// assert!(report.conserves());
/// ```
#[derive(Debug)]
pub struct StreamPipeline {
    config: StreamConfig,
    miner: Miner,
    sim: Option<ResolverSim>,
    store: BackendKind,
    store_path: Option<PathBuf>,
}

impl StreamPipeline {
    /// Creates a pipeline around an already-trained classifier, with a
    /// fresh default resolver cluster.
    pub fn new(config: StreamConfig, miner: Miner) -> StreamPipeline {
        StreamPipeline::with_sim(config, miner, ResolverSim::new(SimConfig::default()))
    }

    /// Creates a pipeline over an existing cluster whose caches carry
    /// prior state.
    pub fn with_sim(config: StreamConfig, miner: Miner, sim: ResolverSim) -> StreamPipeline {
        StreamPipeline {
            config,
            miner,
            sim: Some(sim),
            store: BackendKind::default(),
            store_path: None,
        }
    }

    /// Selects the rpDNS backend each day's miner deduplicates into (the
    /// CLI's `--store`/`--store-path` flags). A fresh store is opened per
    /// day; with a path, the disk backend mirrors day `d`'s runs under
    /// `<path>/day<d>`. Reports stay bit-identical across backends.
    pub fn with_store(mut self, store: BackendKind, store_path: Option<PathBuf>) -> StreamPipeline {
        self.store = store;
        self.store_path = store_path;
        self
    }

    /// The streaming configuration in effect.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The trained classifier.
    pub fn miner(&self) -> &Miner {
        &self.miner
    }

    /// Streams every event of `trace` through the online miner and
    /// returns the end-of-day report. Cache state persists into the next
    /// `run_trace` call.
    pub fn run_trace(&mut self, trace: &DayTrace, gt: Option<&GroundTruth>) -> StreamReport {
        self.run_events(trace.day, &trace.events, gt)
    }

    /// Streams a pre-materialised event slice for simulated day `day` —
    /// the entry point used when events arrive from the ingest decoders
    /// rather than a generated trace.
    pub fn run_events(
        &mut self,
        day: u64,
        events: &[QueryEvent],
        gt: Option<&GroundTruth>,
    ) -> StreamReport {
        let sim = self.sim.take().expect("simulator is always restored");
        let day_spill = self.store_path.as_ref().map(|base| base.join(format!("day{day}")));
        let backend = PdnsBackend::create(self.store, day_spill.as_deref());
        let mut stream =
            StreamMiner::with_sim(self.config, &self.miner, sim, day).with_store(backend);
        if let Some(gt) = gt {
            stream = stream.ground_truth(gt);
        }
        for event in events {
            stream.push(event);
        }
        let (report, sim) = stream.finish();
        self.sim = Some(sim);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_core::{DailyPipeline, MinerConfig};
    use dnsnoise_workload::{Scenario, ScenarioConfig};

    #[test]
    fn pipeline_carries_cache_state_across_days() {
        let s = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.03), 17);
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let _ = pipeline.run_day(&s, 0);
        let miner = pipeline.into_miner().expect("trained");

        let mut pipeline = StreamPipeline::new(StreamConfig::default(), miner);
        let day1 = pipeline.run_trace(&s.generate_day(1), Some(s.ground_truth()));
        let day2 = pipeline.run_trace(&s.generate_day(2), Some(s.ground_truth()));
        assert!(day1.conserves() && day2.conserves());
        assert_eq!(day1.day, 1);
        assert_eq!(day2.day, 2);
        // Warm caches on day 2: repeat queries hit below without going above.
        assert!(day2.day_report.above_total < day2.day_report.below_total);
    }
}
