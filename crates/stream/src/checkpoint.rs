//! Process-level stream checkpointing: serialise the complete
//! [`StreamMiner`](crate::StreamMiner) state at epoch boundaries so a
//! killed-and-restarted process resumes mid-day and produces a report
//! byte-identical to an uninterrupted run.
//!
//! A [`Checkpoint`] captures everything the miner owns — the name
//! registry, both count-min sketches, both HyperLogLogs, the fpDNS and
//! rpDNS datasets (including the disk backend's exact memtable and run
//! layout, so its subsequent compaction decisions are identical), the
//! epoch summaries closed so far, and the served-class tallies. What it
//! deliberately does *not* capture is the resolver session: its caches
//! are a pure function of the event prefix, so
//! [`StreamMiner::resume`](crate::StreamMiner::resume) rebuilds them by
//! replaying the first [`Checkpoint::pushed`] trace events through a
//! fresh session with a unit observer.
//!
//! The on-disk format follows the store's durability conventions
//! (DESIGN.md §9): a magic + version header, big-endian fixed-width
//! fields, length-prefixed sequences, and a CRC-32 footer over the whole
//! image, written via the same atomic staged-rename writer the run
//! store uses. Parsing is total on arbitrary bytes — truncation, bit
//! flips, and forged lengths surface as errors, never panics — with the
//! footer checksum verified before any field is trusted; decoded keys
//! behind a valid checksum are trusted, as in the run format.

use std::path::Path;

use dnsnoise_core::Finding;
use dnsnoise_dns::{Name, QType, Timestamp, Ttl};
use dnsnoise_pdns::store::crc::crc32;
use dnsnoise_pdns::store::keys::{self, CompositeKey};
use dnsnoise_pdns::store::{io, PdnsStore};
use dnsnoise_pdns::{
    BackendKind, DailyNewRrs, FpDnsLog, FpDnsLogParts, FpDnsRecord, PdnsBackend, RpDns, Run,
    RunStore, StoreError,
};

use crate::engine::{
    EpochSummary, StreamConfig, StreamState, CM_MISSES_SEED_XOR, HLL_NAMES_SEED_XOR,
};
use crate::sketch::{CountMinSketch, HyperLogLog};

/// Magic + format version leading every serialised checkpoint.
const CHECKPOINT_MAGIC: &[u8; 8] = b"dnckpt1\n";

/// The checkpoint's file name inside a checkpoint directory.
pub const CHECKPOINT_NAME: &str = "checkpoint.bin";

/// A serialisable snapshot of a [`StreamMiner`](crate::StreamMiner) at
/// one point of the event stream (normally an epoch boundary). See the
/// module docs for what it contains and the resume contract.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    // -- configuration echo, verified on resume --
    pub(crate) epoch_secs: u64,
    pub(crate) cm_width: usize,
    pub(crate) cm_depth: usize,
    pub(crate) hll_precision: u8,
    pub(crate) seed: u64,
    pub(crate) backend: BackendKind,
    // -- stream position --
    /// The simulated day being streamed.
    pub day: u64,
    /// Events consumed when the checkpoint was written: a resumed miner
    /// replays exactly this prefix of the trace as warmup and re-pushes
    /// the rest.
    pub pushed: u64,
    pub(crate) current_epoch: Option<u64>,
    pub(crate) peak_state_bytes: usize,
    pub(crate) epochs: Vec<EpochSummary>,
    // -- name registry --
    pub(crate) names: Vec<(Name, Vec<u64>)>,
    pub(crate) registry_bytes: u64,
    // -- sketches --
    pub(crate) cm_queries_rows: Vec<u64>,
    pub(crate) cm_queries_total: u64,
    pub(crate) cm_misses_rows: Vec<u64>,
    pub(crate) cm_misses_total: u64,
    pub(crate) hll_clients_regs: Vec<u8>,
    pub(crate) hll_names_regs: Vec<u8>,
    // -- pDNS datasets --
    pub(crate) fpdns: FpDnsLogParts,
    pub(crate) rpdns_per_day: Vec<DailyNewRrs>,
    pub(crate) rpdns_storage_bytes: u64,
    /// Memory backend: every `(composite key, first-seen day)`, sorted
    /// by key so serialisation is deterministic.
    pub(crate) rpdns_memory: Vec<(CompositeKey, u64)>,
    /// Disk backend: the exact memtable, in key order.
    pub(crate) rpdns_memtable: Vec<(CompositeKey, u64)>,
    /// Disk backend: the exact live runs, oldest first, as serialised
    /// run images.
    pub(crate) rpdns_runs: Vec<Vec<u8>>,
    pub(crate) rpdns_flushes: u64,
    pub(crate) rpdns_compactions: u64,
    // -- served-class tallies --
    pub(crate) answered: u64,
    pub(crate) nxdomain: u64,
    pub(crate) failed: u64,
    pub(crate) shed: u64,
}

impl Checkpoint {
    /// Snapshots the miner's state. Pure observation: nothing is
    /// mutated, nothing touches disk.
    pub(crate) fn capture(
        config: &StreamConfig,
        day: u64,
        pushed: u64,
        current_epoch: Option<u64>,
        peak_state_bytes: usize,
        epochs: &[EpochSummary],
        state: &StreamState,
    ) -> Checkpoint {
        let (rpdns_memory, rpdns_memtable, rpdns_runs, rpdns_flushes, rpdns_compactions) =
            match &state.rpdns {
                PdnsBackend::Memory(s) => {
                    let mut records: Vec<(CompositeKey, u64)> = s
                        .iter()
                        .map(|(key, d)| (keys::encode_key(&key.name, key.qtype, &key.rdata), d))
                        .collect();
                    records.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    (records, Vec::new(), Vec::new(), 0, 0)
                }
                PdnsBackend::Disk(s) => {
                    let memtable = s.memtable_entries().map(|(k, d)| (k.clone(), d)).collect();
                    let runs = s.runs().iter().map(Run::to_bytes).collect();
                    let stats = s.stats();
                    (Vec::new(), memtable, runs, stats.flushes, stats.compactions)
                }
            };
        Checkpoint {
            epoch_secs: config.epoch_secs,
            cm_width: config.cm_width,
            cm_depth: config.cm_depth,
            hll_precision: config.hll_precision,
            seed: config.seed,
            backend: state.rpdns.kind(),
            day,
            pushed,
            current_epoch,
            peak_state_bytes,
            epochs: epochs.to_vec(),
            names: state.names.iter().map(|(n, fps)| (n.clone(), fps.clone())).collect(),
            registry_bytes: state.registry_bytes as u64,
            cm_queries_rows: state.cm_queries.rows().to_vec(),
            cm_queries_total: state.cm_queries.total(),
            cm_misses_rows: state.cm_misses.rows().to_vec(),
            cm_misses_total: state.cm_misses.total(),
            hll_clients_regs: state.hll_clients.registers().to_vec(),
            hll_names_regs: state.hll_names.registers().to_vec(),
            fpdns: state.pdns.to_parts(),
            rpdns_per_day: state.rpdns.daily_stats().to_vec(),
            rpdns_storage_bytes: PdnsStore::storage_bytes(&state.rpdns),
            rpdns_memory,
            rpdns_memtable,
            rpdns_runs,
            rpdns_flushes,
            rpdns_compactions,
            answered: state.answered,
            nxdomain: state.nxdomain,
            failed: state.failed,
            shed: state.shed,
        }
    }

    /// Checks the checkpoint's configuration echo against the resuming
    /// miner's configuration and store backend.
    ///
    /// # Errors
    ///
    /// [`StoreError::ConfigMismatch`] naming every disagreeing field.
    pub fn verify(&self, config: &StreamConfig, backend: BackendKind) -> Result<(), StoreError> {
        let echo = [
            ("epoch_secs", self.epoch_secs, config.epoch_secs),
            ("cm_width", self.cm_width as u64, config.cm_width as u64),
            ("cm_depth", self.cm_depth as u64, config.cm_depth as u64),
            ("hll_precision", u64::from(self.hll_precision), u64::from(config.hll_precision)),
            ("seed", self.seed, config.seed),
        ];
        let mut diffs: Vec<String> = echo
            .iter()
            .filter(|(_, ckpt, ours)| ckpt != ours)
            .map(|(field, ckpt, ours)| format!("{field}: checkpoint={ckpt} config={ours}"))
            .collect();
        if self.backend != backend {
            diffs.push(format!("store backend: checkpoint={} config={}", self.backend, backend));
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(StoreError::ConfigMismatch { detail: diffs.join(", ") })
        }
    }

    /// Rebuilds the online state this checkpoint captured. `backend` is
    /// the resuming miner's (still empty) store, consulted for the disk
    /// engine's tuning and spill directory; the restored store replaces
    /// it wholesale.
    pub(crate) fn restore_state(
        &self,
        config: &StreamConfig,
        backend: &PdnsBackend,
    ) -> Result<StreamState, StoreError> {
        let corrupt = |detail: String| StoreError::corrupt(Path::new(CHECKPOINT_NAME), detail);
        let cm_queries = CountMinSketch::from_parts(
            config.cm_width,
            config.cm_depth,
            config.seed,
            self.cm_queries_rows.clone(),
            self.cm_queries_total,
        )
        .ok_or_else(|| corrupt("query-sketch cell count does not match geometry".to_string()))?;
        let cm_misses = CountMinSketch::from_parts(
            config.cm_width,
            config.cm_depth,
            config.seed ^ CM_MISSES_SEED_XOR,
            self.cm_misses_rows.clone(),
            self.cm_misses_total,
        )
        .ok_or_else(|| corrupt("miss-sketch cell count does not match geometry".to_string()))?;
        let hll_clients = HyperLogLog::from_parts(
            config.hll_precision,
            config.seed,
            self.hll_clients_regs.clone(),
        )
        .ok_or_else(|| corrupt("client-HLL register count does not match precision".to_string()))?;
        let hll_names = HyperLogLog::from_parts(
            config.hll_precision,
            config.seed ^ HLL_NAMES_SEED_XOR,
            self.hll_names_regs.clone(),
        )
        .ok_or_else(|| corrupt("name-HLL register count does not match precision".to_string()))?;
        let rpdns = match backend {
            PdnsBackend::Memory(_) => {
                let records = self
                    .rpdns_memory
                    .iter()
                    .map(|(key, d)| keys::decode_key(key).map(|k| (k, *d)))
                    .collect::<Result<_, _>>()
                    .map_err(corrupt)?;
                PdnsBackend::Memory(RpDns::from_parts(
                    records,
                    self.rpdns_per_day.clone(),
                    self.rpdns_storage_bytes,
                ))
            }
            PdnsBackend::Disk(s) => {
                let epsilon = s.config().epsilon;
                let mut runs = Vec::with_capacity(self.rpdns_runs.len());
                for image in &self.rpdns_runs {
                    runs.push(
                        Run::from_bytes(image, epsilon)
                            .map_err(|detail| corrupt(format!("checkpointed run: {detail}")))?,
                    );
                }
                PdnsBackend::Disk(RunStore::from_parts(
                    s.config().clone(),
                    self.rpdns_memtable.clone(),
                    runs,
                    self.rpdns_per_day.clone(),
                    self.rpdns_storage_bytes,
                    self.rpdns_flushes,
                    self.rpdns_compactions,
                ))
            }
        };
        Ok(StreamState {
            names: self.names.iter().cloned().collect(),
            cm_queries,
            cm_misses,
            hll_clients,
            hll_names,
            pdns: FpDnsLog::from_parts(self.fpdns.clone()),
            rpdns,
            answered: self.answered,
            nxdomain: self.nxdomain,
            failed: self.failed,
            shed: self.shed,
            registry_bytes: self.registry_bytes as usize,
        })
    }

    /// Serialises the checkpoint: magic, fields, CRC-32 footer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CHECKPOINT_MAGIC);
        put_u64(&mut out, self.epoch_secs);
        put_u64(&mut out, self.cm_width as u64);
        put_u64(&mut out, self.cm_depth as u64);
        out.push(self.hll_precision);
        put_u64(&mut out, self.seed);
        out.push(match self.backend {
            BackendKind::Memory => 0,
            BackendKind::Disk => 1,
        });
        put_u64(&mut out, self.day);
        put_u64(&mut out, self.pushed);
        out.push(u8::from(self.current_epoch.is_some()));
        put_u64(&mut out, self.current_epoch.unwrap_or(0));
        put_u64(&mut out, self.peak_state_bytes as u64);
        put_u64(&mut out, self.epochs.len() as u64);
        for e in &self.epochs {
            put_u64(&mut out, e.epoch);
            put_u64(&mut out, e.end_secs);
            put_u64(&mut out, e.events);
            put_u64(&mut out, e.distinct_names);
            put_u64(&mut out, e.distinct_names_est);
            put_u64(&mut out, e.distinct_clients_est);
            put_u64(&mut out, e.state_bytes as u64);
            put_u64(&mut out, e.findings.len() as u64);
            for f in &e.findings {
                put_finding(&mut out, f);
            }
        }
        put_u64(&mut out, self.names.len() as u64);
        for (name, fps) in &self.names {
            put_name(&mut out, name);
            put_u64(&mut out, fps.len() as u64);
            for &fp in fps {
                put_u64(&mut out, fp);
            }
        }
        put_u64(&mut out, self.registry_bytes);
        for rows in [&self.cm_queries_rows, &self.cm_misses_rows] {
            put_u64(&mut out, rows.len() as u64);
            for &cell in rows {
                put_u64(&mut out, cell);
            }
        }
        put_u64(&mut out, self.cm_queries_total);
        put_u64(&mut out, self.cm_misses_total);
        for regs in [&self.hll_clients_regs, &self.hll_names_regs] {
            put_u64(&mut out, regs.len() as u64);
            out.extend_from_slice(regs);
        }
        put_u64(&mut out, self.fpdns.retain as u64);
        out.push(u8::from(self.fpdns.exercise_wire));
        put_u64(&mut out, self.fpdns.total_records);
        put_u64(&mut out, self.fpdns.total_responses);
        put_u64(&mut out, self.fpdns.nx_responses);
        put_u64(&mut out, self.fpdns.storage_bytes);
        put_u64(&mut out, self.fpdns.wire_roundtrips);
        put_u64(&mut out, self.fpdns.wire_parse_failures);
        out.extend_from_slice(&self.fpdns.next_txid.to_be_bytes());
        for hour in self.fpdns.hourly_records.iter().chain(&self.fpdns.hourly_storage_bytes) {
            put_u64(&mut out, *hour);
        }
        put_u64(&mut out, self.fpdns.retained.len() as u64);
        for r in &self.fpdns.retained {
            put_u64(&mut out, r.timestamp.as_secs());
            put_u64(&mut out, r.client);
            put_name(&mut out, &r.name);
            out.extend_from_slice(&r.qtype.code().to_be_bytes());
            out.extend_from_slice(&r.ttl.as_secs().to_be_bytes());
            put_blob16(&mut out, &keys::encode_rdata(&r.rdata));
        }
        put_u64(&mut out, self.rpdns_per_day.len() as u64);
        for day in &self.rpdns_per_day {
            put_u64(&mut out, day.new_records);
            put_u64(&mut out, day.repeated_records);
        }
        put_u64(&mut out, self.rpdns_storage_bytes);
        put_u64(&mut out, self.rpdns_flushes);
        put_u64(&mut out, self.rpdns_compactions);
        for entries in [&self.rpdns_memory, &self.rpdns_memtable] {
            put_u64(&mut out, entries.len() as u64);
            for ((name, qtype, rdata), day) in entries {
                put_blob16(&mut out, name);
                out.extend_from_slice(&qtype.to_be_bytes());
                put_blob16(&mut out, rdata);
                put_u64(&mut out, *day);
            }
        }
        put_u64(&mut out, self.rpdns_runs.len() as u64);
        for image in &self.rpdns_runs {
            put_u64(&mut out, image.len() as u64);
            out.extend_from_slice(image);
        }
        put_u64(&mut out, self.answered);
        put_u64(&mut out, self.nxdomain);
        put_u64(&mut out, self.failed);
        put_u64(&mut out, self.shed);
        let footer = crc32(&out);
        out.extend_from_slice(&footer.to_be_bytes());
        out
    }

    /// Deserialises a checkpoint image. Total on arbitrary input: any
    /// truncation, bit flip, or forged length is an error, never a
    /// panic — the footer CRC is checked before any field is trusted.
    // lint:certify(no-panic)
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, String> {
        let Some((body, footer)) = bytes
            .len()
            .checked_sub(4)
            .filter(|&split| split >= CHECKPOINT_MAGIC.len())
            .and_then(|split| bytes.split_at_checked(split))
        else {
            return Err("checkpoint shorter than magic + footer".to_string());
        };
        let footer: [u8; 4] =
            footer.try_into().map_err(|_| "checkpoint footer is not 4 bytes".to_string())?;
        let stored = u32::from_be_bytes(footer);
        if crc32(body) != stored {
            return Err("checkpoint checksum mismatch".to_string());
        }
        let rest = body.strip_prefix(CHECKPOINT_MAGIC.as_slice()).ok_or("bad checkpoint magic")?;
        let mut cur = Cursor { bytes: rest, at: 0 };
        let epoch_secs = cur.u64()?;
        let cm_width = cur.usize()?;
        let cm_depth = cur.usize()?;
        let hll_precision = cur.u8()?;
        let seed = cur.u64()?;
        let backend = match cur.u8()? {
            0 => BackendKind::Memory,
            1 => BackendKind::Disk,
            other => return Err(format!("unknown store backend tag {other}")),
        };
        let day = cur.u64()?;
        let pushed = cur.u64()?;
        let has_current = cur.u8()?;
        let current_raw = cur.u64()?;
        let current_epoch = match has_current {
            0 => None,
            1 => Some(current_raw),
            other => return Err(format!("bad current-epoch flag {other}")),
        };
        let peak_state_bytes = cur.usize()?;
        let epoch_count = cur.count()?;
        let mut epochs = Vec::with_capacity(epoch_count);
        for _ in 0..epoch_count {
            let epoch = cur.u64()?;
            let end_secs = cur.u64()?;
            let events = cur.u64()?;
            let distinct_names = cur.u64()?;
            let distinct_names_est = cur.u64()?;
            let distinct_clients_est = cur.u64()?;
            let state_bytes = cur.usize()?;
            let finding_count = cur.count()?;
            let mut findings = Vec::with_capacity(finding_count);
            for _ in 0..finding_count {
                findings.push(cur.finding()?);
            }
            epochs.push(EpochSummary {
                epoch,
                end_secs,
                events,
                findings,
                distinct_names,
                distinct_names_est,
                distinct_clients_est,
                state_bytes,
            });
        }
        let name_count = cur.count()?;
        let mut names = Vec::with_capacity(name_count);
        for _ in 0..name_count {
            let name = cur.name()?;
            let fp_count = cur.count()?;
            let mut fps = Vec::with_capacity(fp_count);
            for _ in 0..fp_count {
                fps.push(cur.u64()?);
            }
            names.push((name, fps));
        }
        let registry_bytes = cur.u64()?;
        let mut cm_rows = Vec::with_capacity(2);
        for _ in 0..2 {
            let cells = cur.count()?;
            let mut rows = Vec::with_capacity(cells);
            for _ in 0..cells {
                rows.push(cur.u64()?);
            }
            cm_rows.push(rows);
        }
        let (cm_misses_rows, cm_queries_rows) = match (cm_rows.pop(), cm_rows.pop()) {
            (Some(misses), Some(queries)) => (misses, queries),
            _ => return Err("sketch row sets missing".to_string()),
        };
        let cm_queries_total = cur.u64()?;
        let cm_misses_total = cur.u64()?;
        let regs = cur.count()?;
        let hll_clients_regs = cur.take(regs)?.to_vec();
        let regs = cur.count()?;
        let hll_names_regs = cur.take(regs)?.to_vec();
        let retain = cur.usize()?;
        let exercise_wire = cur.bool()?;
        let total_records = cur.u64()?;
        let total_responses = cur.u64()?;
        let nx_responses = cur.u64()?;
        let storage_bytes = cur.u64()?;
        let wire_roundtrips = cur.u64()?;
        let wire_parse_failures = cur.u64()?;
        let next_txid = cur.u16()?;
        let mut hourly = [[0u64; 24]; 2];
        for half in &mut hourly {
            for slot in half.iter_mut() {
                *slot = cur.u64()?;
            }
        }
        let [hourly_records, hourly_storage_bytes] = hourly;
        let retained_count = cur.count()?;
        let mut retained = Vec::with_capacity(retained_count);
        for _ in 0..retained_count {
            let timestamp = Timestamp::from_secs(cur.u64()?);
            let client = cur.u64()?;
            let name = cur.name()?;
            let qtype_code = cur.u16()?;
            let qtype = QType::from_code(qtype_code)
                .ok_or_else(|| format!("unknown qtype code {qtype_code}"))?;
            let ttl = Ttl::from_secs(cur.u32()?);
            let rdata_bytes = cur.blob16()?;
            if rdata_bytes.is_empty() {
                return Err("empty rdata encoding".to_string());
            }
            let rdata = keys::decode_rdata(rdata_bytes)?;
            retained.push(FpDnsRecord { timestamp, client, name, qtype, ttl, rdata });
        }
        let fpdns = FpDnsLogParts {
            retain,
            exercise_wire,
            retained,
            total_records,
            total_responses,
            nx_responses,
            storage_bytes,
            wire_roundtrips,
            wire_parse_failures,
            next_txid,
            hourly_records,
            hourly_storage_bytes,
        };
        let day_count = cur.count()?;
        let mut rpdns_per_day = Vec::with_capacity(day_count);
        for _ in 0..day_count {
            let new_records = cur.u64()?;
            let repeated_records = cur.u64()?;
            rpdns_per_day.push(DailyNewRrs { new_records, repeated_records });
        }
        let rpdns_storage_bytes = cur.u64()?;
        let rpdns_flushes = cur.u64()?;
        let rpdns_compactions = cur.u64()?;
        let mut keyed = Vec::with_capacity(2);
        for _ in 0..2 {
            let entry_count = cur.count()?;
            let mut entries: Vec<(CompositeKey, u64)> = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let name = cur.blob16()?.to_vec();
                let qtype = cur.u16()?;
                let rdata = cur.blob16()?.to_vec();
                let entry_day = cur.u64()?;
                entries.push(((name, qtype, rdata), entry_day));
            }
            keyed.push(entries);
        }
        let (rpdns_memtable, rpdns_memory) = match (keyed.pop(), keyed.pop()) {
            (Some(memtable), Some(memory)) => (memtable, memory),
            _ => return Err("keyed entry sets missing".to_string()),
        };
        let run_count = cur.count()?;
        let mut rpdns_runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let len = cur.count()?;
            rpdns_runs.push(cur.take(len)?.to_vec());
        }
        let answered = cur.u64()?;
        let nxdomain = cur.u64()?;
        let failed = cur.u64()?;
        let shed = cur.u64()?;
        if cur.at != cur.bytes.len() {
            return Err(format!(
                "{} trailing checkpoint bytes",
                cur.bytes.len().saturating_sub(cur.at)
            ));
        }
        Ok(Checkpoint {
            epoch_secs,
            cm_width,
            cm_depth,
            hll_precision,
            seed,
            backend,
            day,
            pushed,
            current_epoch,
            peak_state_bytes,
            epochs,
            names,
            registry_bytes,
            cm_queries_rows,
            cm_queries_total,
            cm_misses_rows,
            cm_misses_total,
            hll_clients_regs,
            hll_names_regs,
            fpdns,
            rpdns_per_day,
            rpdns_storage_bytes,
            rpdns_memory,
            rpdns_memtable,
            rpdns_runs,
            rpdns_flushes,
            rpdns_compactions,
            answered,
            nxdomain,
            failed,
            shed,
        })
    }

    /// Atomically publishes this checkpoint as `dir/checkpoint.bin`
    /// (staged `.tmp`, fsync, rename, directory fsync — a crash leaves
    /// either the previous checkpoint or this one, never a torn mix).
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        io::atomic_write(dir, CHECKPOINT_NAME, &self.to_bytes())
    }

    /// Loads `dir/checkpoint.bin`. `Ok(None)` when the file does not
    /// exist (a fresh start); corruption is an error, not a silent
    /// restart from zero.
    pub fn load(dir: &Path) -> Result<Option<Checkpoint>, StoreError> {
        let path = dir.join(CHECKPOINT_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io("read", &path, &e)),
        };
        Checkpoint::from_bytes(&bytes)
            .map(Some)
            .map_err(|detail| StoreError::corrupt(&path, detail))
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// A `u16`-length-prefixed short blob (names, keys, rdata — all bounded
/// well below 64 KiB by the DNS wire format).
fn put_blob16(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= usize::from(u16::MAX));
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn put_name(out: &mut Vec<u8>, name: &Name) {
    put_blob16(out, name.to_string().as_bytes());
}

fn put_finding(out: &mut Vec<u8>, f: &Finding) {
    put_name(out, &f.zone);
    put_u64(out, f.depth as u64);
    put_u64(out, f.confidence.to_bits());
    put_u64(out, f.members as u64);
}

/// A bounds-checked reader over the checkpoint body — every `take` is
/// validated, so malformed input surfaces as `Err`, never as a slice
/// panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    // lint:certify(no-panic)
    fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(len).ok_or_else(|| "truncated checkpoint".to_string())?;
        let s = self.bytes.get(self.at..end).ok_or_else(|| "truncated checkpoint".to_string())?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        self.take(1)?.first().copied().ok_or_else(|| "truncated checkpoint".to_string())
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad boolean byte {other}")),
        }
    }

    fn u16(&mut self) -> Result<u16, String> {
        let chunk: [u8; 2] =
            self.take(2)?.try_into().map_err(|_| "truncated checkpoint".to_string())?;
        Ok(u16::from_be_bytes(chunk))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let chunk: [u8; 4] =
            self.take(4)?.try_into().map_err(|_| "truncated checkpoint".to_string())?;
        Ok(u32::from_be_bytes(chunk))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let chunk: [u8; 8] =
            self.take(8)?.try_into().map_err(|_| "truncated checkpoint".to_string())?;
        Ok(u64::from_be_bytes(chunk))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "value out of range".to_string())
    }

    /// A count field, sanity-bounded by the bytes actually remaining so
    /// a forged count cannot drive a huge up-front allocation.
    fn count(&mut self) -> Result<usize, String> {
        let n = self.usize()?;
        if n > self.bytes.len().saturating_sub(self.at) {
            return Err("count exceeds remaining bytes".to_string());
        }
        Ok(n)
    }

    fn blob16(&mut self) -> Result<&'a [u8], String> {
        let len = usize::from(self.u16()?);
        self.take(len)
    }

    fn name(&mut self) -> Result<Name, String> {
        let text =
            std::str::from_utf8(self.blob16()?).map_err(|_| "name is not UTF-8".to_string())?;
        text.parse::<Name>().map_err(|e| format!("bad name `{text}`: {e}"))
    }

    fn finding(&mut self) -> Result<Finding, String> {
        let zone = self.name()?;
        let depth = self.usize()?;
        let confidence = f64::from_bits(self.u64()?);
        let members = self.usize()?;
        if !confidence.is_finite() {
            return Err("finding confidence is not finite".to_string());
        }
        Ok(Finding { zone, depth, confidence, members })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch_secs: 21_600,
            cm_width: 8,
            cm_depth: 2,
            hll_precision: 4,
            seed: 7,
            backend: BackendKind::Memory,
            day: 3,
            pushed: 1234,
            current_epoch: Some(2),
            peak_state_bytes: 4096,
            epochs: vec![EpochSummary {
                epoch: 0,
                end_secs: 21_600,
                events: 600,
                findings: vec![Finding {
                    zone: "dyn.example.com".parse().unwrap(),
                    depth: 1,
                    confidence: 0.9375,
                    members: 40,
                }],
                distinct_names: 17,
                distinct_names_est: 17,
                distinct_clients_est: 9,
                state_bytes: 2048,
            }],
            names: vec![
                ("a.example.com".parse().unwrap(), vec![11, 22]),
                ("b.example.com".parse().unwrap(), vec![33]),
            ],
            registry_bytes: 321,
            cm_queries_rows: (0..16).collect(),
            cm_queries_total: 120,
            cm_misses_rows: (100..116).collect(),
            cm_misses_total: 55,
            hll_clients_regs: vec![1; 16],
            hll_names_regs: vec![2; 16],
            fpdns: FpDnsLogParts {
                retain: 4,
                exercise_wire: false,
                retained: vec![FpDnsRecord {
                    timestamp: Timestamp::from_secs(86_400 * 3 + 42),
                    client: 77,
                    name: "a.example.com".parse().unwrap(),
                    qtype: QType::A,
                    ttl: Ttl::from_secs(60),
                    rdata: keys::decode_rdata(&keys::encode_rdata(&dnsnoise_dns::RData::A(
                        std::net::Ipv4Addr::new(192, 0, 2, 1),
                    )))
                    .unwrap(),
                }],
                total_records: 9,
                total_responses: 8,
                nx_responses: 1,
                storage_bytes: 512,
                wire_roundtrips: 0,
                wire_parse_failures: 0,
                next_txid: 10,
                hourly_records: [3; 24],
                hourly_storage_bytes: [7; 24],
            },
            rpdns_per_day: vec![DailyNewRrs { new_records: 5, repeated_records: 2 }],
            rpdns_storage_bytes: 640,
            rpdns_memory: vec![((vec![1, 2, 0], 1, vec![9, 9]), 0)],
            rpdns_memtable: Vec::new(),
            rpdns_runs: Vec::new(),
            rpdns_flushes: 0,
            rpdns_compactions: 0,
            answered: 500,
            nxdomain: 80,
            failed: 20,
            shed: 0,
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn every_truncation_and_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        for byte in (0..bytes.len()).step_by(3) {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x20;
            assert!(Checkpoint::from_bytes(&flipped).is_err(), "flip at {byte} accepted");
        }
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dnsnoise-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Checkpoint::load(&dir).unwrap().is_none(), "fresh dir has no checkpoint");
        let ckpt = sample();
        ckpt.save(&dir).unwrap();
        let back = Checkpoint::load(&dir).unwrap().expect("checkpoint exists");
        assert_eq!(back.to_bytes(), ckpt.to_bytes());
        std::fs::write(dir.join(CHECKPOINT_NAME), b"garbage").unwrap();
        assert!(matches!(Checkpoint::load(&dir), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_rejects_mismatched_tuning_and_backend() {
        let ckpt = sample();
        let good = StreamConfig {
            epoch_secs: 21_600,
            cm_width: 8,
            cm_depth: 2,
            hll_precision: 4,
            seed: 7,
        };
        ckpt.verify(&good, BackendKind::Memory).unwrap();
        let err = ckpt.verify(&StreamConfig { seed: 8, ..good }, BackendKind::Disk).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("seed"), "{text}");
        assert!(text.contains("store backend"), "{text}");
        assert!(ckpt.verify(&good, BackendKind::Disk).is_err());
    }
}
