//! Bounded-memory frequency and cardinality sketches.
//!
//! Both sketches are *seeded and deterministic*: every hash is a pure
//! function of `(seed, key)`, so two runs with the same seed touch the
//! same cells in the same order and the streaming miner's output is a
//! pure function of the trace and its configuration — the same contract
//! the batch replay honours.
//!
//! * [`CountMinSketch`] — per-key counters with one-sided error: an
//!   estimate is never below the true count, and exceeds it by more than
//!   `ε·N` (`ε = e / width`, `N` = total increments) with probability at
//!   most `e^(−depth)` (Cormode & Muthukrishnan's bound).
//! * [`HyperLogLog`] — distinct-count estimation with relative standard
//!   error `≈ 1.04 / √2^precision`, using linear counting in the small
//!   range where raw HLL is biased.

/// The 64-bit SplitMix64 finaliser — the same mixer the resolver's
/// per-record client sketch uses. Full-avalanche, so sequential keys
/// scatter uniformly across sketch cells.
fn mix64(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Seeded 64-bit hash of `key`: mixing the seed first decorrelates the
/// row hash functions from the key distribution.
pub(crate) fn seeded_hash(seed: u64, key: u64) -> u64 {
    mix64(key ^ mix64(seed))
}

/// Seedless FNV-1a over a byte string — the stable fingerprint used to
/// key sketches by resource record.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded count-min sketch over `u64` keys.
///
/// # Examples
///
/// ```
/// use dnsnoise_stream::CountMinSketch;
///
/// let mut cm = CountMinSketch::new(1024, 4, 7);
/// cm.add(42, 3);
/// cm.add(42, 2);
/// assert!(cm.estimate(42) >= 5); // never underestimates
/// assert_eq!(cm.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    /// `depth` rows of `width` counters, row-major.
    rows: Vec<u64>,
    /// Total of all increments (the `N` in the `ε·N` error bound).
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch of `depth` rows × `width` counters.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> CountMinSketch {
        assert!(width > 0, "count-min width must be positive");
        assert!(depth > 0, "count-min depth must be positive");
        CountMinSketch { width, depth, seed, rows: vec![0; width * depth], total: 0 }
    }

    /// The cell `key` maps to in `row`.
    fn cell(&self, row: usize, key: u64) -> usize {
        let h = seeded_hash(self.seed ^ (row as u64).wrapping_mul(0xa076_1d64_78bd_642f), key);
        row * self.width + (h % self.width as u64) as usize
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let cell = self.cell(row, key);
            self.rows[cell] += count;
        }
        self.total += count;
    }

    /// The count-min estimate for `key`: the minimum over rows. Never
    /// below the true count; above it by more than [`Self::epsilon`]`·`
    /// [`Self::total`] with probability at most `e^(−depth)`.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth).map(|row| self.rows[self.cell(row, key)]).min().unwrap_or(0)
    }

    /// Total increments folded in so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Row width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The per-estimate error factor `ε = e / width`.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// Resident counter storage in bytes.
    pub fn state_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<u64>()
    }

    /// The raw row-major counter cells, for checkpoint serialisation.
    pub(crate) fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Rebuilds a sketch from checkpointed parts. Returns `None` when
    /// the cell count does not match `width × depth`.
    pub(crate) fn from_parts(
        width: usize,
        depth: usize,
        seed: u64,
        rows: Vec<u64>,
        total: u64,
    ) -> Option<CountMinSketch> {
        if width == 0 || depth == 0 || rows.len() != width * depth {
            return None;
        }
        Some(CountMinSketch { width, depth, seed, rows, total })
    }
}

/// A seeded HyperLogLog cardinality estimator over `u64` keys.
///
/// # Examples
///
/// ```
/// use dnsnoise_stream::HyperLogLog;
///
/// let mut hll = HyperLogLog::new(12, 7);
/// for k in 0..1000u64 {
///     hll.insert(k);
///     hll.insert(k); // duplicates don't count
/// }
/// let est = hll.estimate();
/// assert!((est - 1000.0).abs() / 1000.0 < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    seed: u64,
    /// `2^precision` max-rank registers.
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Smallest supported precision (16 registers).
    pub const MIN_PRECISION: u8 = 4;
    /// Largest supported precision (65 536 registers).
    pub const MAX_PRECISION: u8 = 16;

    /// Creates an estimator with `2^precision` one-byte registers.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside
    /// [`Self::MIN_PRECISION`]`..=`[`Self::MAX_PRECISION`].
    pub fn new(precision: u8, seed: u64) -> HyperLogLog {
        assert!(
            (Self::MIN_PRECISION..=Self::MAX_PRECISION).contains(&precision),
            "HLL precision must be within {}..={}",
            Self::MIN_PRECISION,
            Self::MAX_PRECISION,
        );
        HyperLogLog { precision, seed, registers: vec![0; 1 << precision] }
    }

    /// Folds one key into the estimator.
    pub fn insert(&mut self, key: u64) {
        let h = seeded_hash(self.seed, key);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank of the first set bit in the remaining 64−p bits, 1-based;
        // an all-zero remainder saturates at 64−p+1.
        let rest = h << self.precision;
        let rank =
            if rest == 0 { 64 - u32::from(self.precision) + 1 } else { rest.leading_zeros() + 1 };
        let rank = rank as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// The cardinality estimate, with linear-counting correction in the
    /// small range where raw HLL is biased.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        // 2^-register is exact in f64 for register ≤ 63, so the harmonic
        // sum involves no transcendental calls.
        let sum: f64 = self.registers.iter().map(|&r| 1.0 / (1u64 << r) as f64).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// The estimate rounded to a whole count.
    pub fn estimate_rounded(&self) -> u64 {
        self.estimate().round() as u64
    }

    /// The precision-implied relative standard error `1.04 / √m`.
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// The configured precision.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Resident register storage in bytes.
    pub fn state_bytes(&self) -> usize {
        self.registers.len()
    }

    /// The raw max-rank registers, for checkpoint serialisation.
    pub(crate) fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Rebuilds an estimator from checkpointed parts. Returns `None`
    /// when the register count does not match `2^precision` or the
    /// precision is out of range.
    pub(crate) fn from_parts(precision: u8, seed: u64, registers: Vec<u8>) -> Option<HyperLogLog> {
        if !(Self::MIN_PRECISION..=Self::MAX_PRECISION).contains(&precision)
            || registers.len() != 1usize << precision
        {
            return None;
        }
        Some(HyperLogLog { precision, seed, registers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_is_exact_without_collisions() {
        // 16 distinct keys in a 4096-wide sketch: collision-free for this
        // seed, so every estimate is exact.
        let mut cm = CountMinSketch::new(4096, 4, 7);
        for key in 0..16u64 {
            cm.add(key, key + 1);
        }
        for key in 0..16u64 {
            assert_eq!(cm.estimate(key), key + 1);
        }
        assert_eq!(cm.total(), (1..=16).sum::<u64>());
    }

    #[test]
    fn count_min_never_underestimates_under_heavy_collision() {
        // Width 2: everything collides; estimates may only inflate.
        let mut cm = CountMinSketch::new(2, 2, 3);
        for key in 0..100u64 {
            cm.add(key, 1);
        }
        for key in 0..100u64 {
            assert!(cm.estimate(key) >= 1);
        }
    }

    #[test]
    fn count_min_is_deterministic_for_a_seed_and_seed_sensitive() {
        let mut a = CountMinSketch::new(64, 3, 11);
        let mut b = CountMinSketch::new(64, 3, 11);
        let mut c = CountMinSketch::new(64, 3, 12);
        for key in 0..500u64 {
            a.add(key, 1);
            b.add(key, 1);
            c.add(key, 1);
        }
        assert_eq!(a, b);
        assert_ne!(a.rows, c.rows, "different seeds must permute cells");
    }

    #[test]
    fn hll_estimates_within_bound_on_sequential_keys() {
        for precision in [8, 12, 14] {
            let mut hll = HyperLogLog::new(precision, 7);
            let n = 10_000u64;
            for k in 0..n {
                hll.insert(k);
            }
            let err = (hll.estimate() - n as f64).abs() / n as f64;
            // 4σ of the precision-implied standard error.
            assert!(
                err <= 4.0 * hll.relative_error(),
                "p={precision}: err {err} vs bound {}",
                4.0 * hll.relative_error()
            );
        }
    }

    #[test]
    fn hll_small_range_is_near_exact() {
        let mut hll = HyperLogLog::new(12, 7);
        for k in 0..50u64 {
            hll.insert(k);
            hll.insert(k);
        }
        // Linear counting over 4096 registers: exact for 50 keys short of
        // a register collision.
        let est = hll.estimate_rounded();
        assert!((49..=51).contains(&est), "estimate {est}");
    }

    #[test]
    fn hll_is_deterministic_for_a_seed() {
        let mut a = HyperLogLog::new(10, 5);
        let mut b = HyperLogLog::new(10, 5);
        for k in 0..2000u64 {
            a.insert(k * 7919);
            b.insert(k * 7919);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn hll_rejects_out_of_range_precision() {
        let _ = HyperLogLog::new(3, 7);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn count_min_rejects_zero_width() {
        let _ = CountMinSketch::new(0, 4, 7);
    }
}
