//! Kill/resume fidelity: a stream killed mid-day and resumed from its
//! last epoch-boundary checkpoint must produce a report byte-identical
//! to an uninterrupted run — same render, same findings TSV, same day
//! report — for both rpDNS backends.

use dnsnoise_core::{DailyPipeline, Miner, MinerConfig};
use dnsnoise_pdns::{fsck, BackendKind, PdnsBackend};
use dnsnoise_stream::{Checkpoint, StreamConfig, StreamMiner};
use dnsnoise_workload::{Scenario, ScenarioConfig};

fn scenario(seed: u64) -> Scenario {
    Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.05), seed)
}

fn trained_miner(scenario: &Scenario) -> Miner {
    let mut pipeline = DailyPipeline::new(MinerConfig::default());
    let _ = pipeline.run_day(scenario, 0);
    pipeline.into_miner().expect("day 0 trains the model")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsnoise-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Four two-hour epochs fit in the seeded trace's busy window, so the
/// kill point lies past several checkpoint writes.
fn config() -> StreamConfig {
    StreamConfig { epoch_secs: 7200, ..StreamConfig::default() }
}

#[test]
fn killed_and_resumed_stream_is_byte_identical_for_both_backends() {
    let s = scenario(21);
    let miner = trained_miner(&s);
    let trace = s.generate_day(1);
    let kill_at = trace.events.len() * 3 / 5;

    for kind in [BackendKind::Memory, BackendKind::Disk] {
        let store_dir = temp_dir(&format!("ckpt-store-{kind}"));
        let ckpt_dir = temp_dir(&format!("ckpt-resume-{kind}"));
        let spill = (kind == BackendKind::Disk).then(|| store_dir.clone());

        // Reference: the same trace streamed without interruption.
        let mut reference = StreamMiner::new(config(), &miner)
            .ground_truth(s.ground_truth())
            .with_store(PdnsBackend::create(kind, None));
        for event in &trace.events {
            reference.push(event);
        }
        let (expected, _) = reference.finish();

        // "Process one": checkpoints enabled, killed mid-day (dropped
        // without finish, exactly what abort() leaves behind).
        let mut victim = StreamMiner::new(config(), &miner)
            .ground_truth(s.ground_truth())
            .with_store(PdnsBackend::create(kind, spill.as_deref()))
            .with_checkpoint(&ckpt_dir);
        for event in &trace.events[..kill_at] {
            victim.push(event);
        }
        assert!(victim.checkpoint_error().is_none(), "{kind}: checkpointing failed");
        drop(victim);

        // "Process two": load the checkpoint, replay the consumed prefix
        // as warmup, push the rest of the trace.
        let ckpt = Checkpoint::load(&ckpt_dir)
            .expect("checkpoint readable")
            .expect("a boundary checkpoint was written before the kill");
        assert!(ckpt.pushed > 0 && ckpt.pushed < kill_at as u64, "kill point past a boundary");
        let resumed = StreamMiner::new(config(), &miner)
            .ground_truth(s.ground_truth())
            .with_store(PdnsBackend::create(kind, spill.as_deref()))
            .with_checkpoint(&ckpt_dir)
            .resume(&ckpt, &trace.events[..ckpt.pushed as usize])
            .expect("checkpoint matches the miner's configuration");
        let mut resumed = resumed;
        for event in &trace.events[ckpt.pushed as usize..] {
            resumed.push(event);
        }
        assert!(resumed.checkpoint_error().is_none(), "{kind}: checkpointing failed");
        let (report, _) = resumed.finish();

        assert_eq!(report.render(), expected.render(), "{kind}: render diverged");
        assert_eq!(report.findings_tsv(), expected.findings_tsv(), "{kind}: findings diverged");
        assert_eq!(report.day_report, expected.day_report, "{kind}: day report diverged");
        assert_eq!(
            report.rpdns_store.records, expected.rpdns_store.records,
            "{kind}: rpDNS diverged"
        );

        // The disk backend's spill directory must also be consistent:
        // the resumed store republished its manifest and finish()
        // optimised it, so fsck reports zero problems.
        if kind == BackendKind::Disk {
            let check = fsck(&store_dir, false).expect("fsck runs");
            assert!(check.is_clean(), "{kind}: fsck found problems:\n{}", check.render());
        }

        std::fs::remove_dir_all(&store_dir).ok();
        std::fs::remove_dir_all(&ckpt_dir).ok();
    }
}

#[test]
fn mid_epoch_forced_checkpoint_resumes_identically() {
    // checkpoint_now() mid-epoch must also restore exactly: the open
    // epoch is carried in the checkpoint and still closes at the next
    // boundary after resume.
    let s = scenario(33);
    let miner = trained_miner(&s);
    let trace = s.generate_day(0);
    let ckpt_dir = temp_dir("ckpt-midepoch");
    let cut = trace.events.len() / 3;

    let mut reference = StreamMiner::new(config(), &miner).ground_truth(s.ground_truth());
    for event in &trace.events {
        reference.push(event);
    }
    let (expected, _) = reference.finish();

    let mut victim = StreamMiner::new(config(), &miner)
        .ground_truth(s.ground_truth())
        .with_checkpoint(&ckpt_dir);
    for event in &trace.events[..cut] {
        victim.push(event);
    }
    victim.checkpoint_now();
    assert!(victim.checkpoint_error().is_none());
    drop(victim);

    let ckpt = Checkpoint::load(&ckpt_dir).unwrap().expect("forced checkpoint exists");
    assert_eq!(ckpt.pushed, cut as u64, "a forced checkpoint covers every pushed event");
    let mut resumed = StreamMiner::new(config(), &miner)
        .ground_truth(s.ground_truth())
        .resume(&ckpt, &trace.events[..cut])
        .unwrap();
    for event in &trace.events[cut..] {
        resumed.push(event);
    }
    let (report, _) = resumed.finish();
    assert_eq!(report.render(), expected.render());
    assert_eq!(report.findings_tsv(), expected.findings_tsv());

    std::fs::remove_dir_all(&ckpt_dir).ok();
}

#[test]
fn resume_rejects_wrong_config_backend_and_prefix() {
    let s = scenario(5);
    let miner = trained_miner(&s);
    let trace = s.generate_day(0);
    let ckpt_dir = temp_dir("ckpt-mismatch");

    let mut victim = StreamMiner::new(config(), &miner).with_checkpoint(&ckpt_dir);
    for event in &trace.events[..trace.events.len() / 2] {
        victim.push(event);
    }
    victim.checkpoint_now();
    drop(victim);
    let ckpt = Checkpoint::load(&ckpt_dir).unwrap().expect("checkpoint exists");
    let warmup = &trace.events[..ckpt.pushed as usize];

    // Different sketch seed: the restored sketches would be garbage.
    let other = StreamConfig { seed: 99, ..config() };
    let err = StreamMiner::new(other, &miner).resume(&ckpt, warmup).unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");

    // Different store backend.
    let err = StreamMiner::new(config(), &miner)
        .with_store(PdnsBackend::create(BackendKind::Disk, None))
        .resume(&ckpt, warmup)
        .unwrap_err();
    assert!(err.to_string().contains("store backend"), "{err}");

    // Short warmup: the replay prefix must cover exactly `pushed` events.
    let err = StreamMiner::new(config(), &miner)
        .resume(&ckpt, &trace.events[..ckpt.pushed as usize - 1])
        .unwrap_err();
    assert!(err.to_string().contains("replay prefix"), "{err}");

    std::fs::remove_dir_all(&ckpt_dir).ok();
}
