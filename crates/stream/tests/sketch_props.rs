//! Property tests for the bounded-memory sketches: the count-min error
//! guarantee (one-sided, within ε·N except with probability e^-depth per
//! key), the HyperLogLog precision-implied relative error, and strict
//! determinism for a fixed seed — no ambient randomness anywhere.

use std::collections::BTreeMap;

use dnsnoise_stream::{CountMinSketch, HyperLogLog};
use proptest::prelude::*;

proptest! {
    /// A count-min estimate never undercounts, and overshoots past the
    /// ε·N budget on at most a small fraction of keys. The per-key
    /// failure probability is e^-depth, so across K keys we allow a
    /// generous 8·K·e^-depth + 2 violations — far above any plausible
    /// honest run, far below a broken hash.
    #[test]
    fn cm_is_one_sided_and_respects_epsilon_n(
        entries in proptest::collection::vec((any::<u64>(), 1u64..100), 1..200),
        width_pow in 8u32..12,
        depth in 2usize..6,
        seed in any::<u64>(),
    ) {
        let width = 1usize << width_pow;
        let mut cm = CountMinSketch::new(width, depth, seed);
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, count) in &entries {
            cm.add(*key, *count);
            *truth.entry(*key).or_insert(0) += count;
        }
        let total: u64 = truth.values().sum();
        prop_assert_eq!(cm.total(), total);

        let budget = (cm.epsilon() * total as f64).ceil() as u64;
        let mut violations = 0usize;
        for (key, true_count) in &truth {
            let est = cm.estimate(*key);
            prop_assert!(est >= *true_count, "underestimate: {est} < {true_count}");
            if est - true_count > budget {
                violations += 1;
            }
        }
        let allowed = 8.0 * truth.len() as f64 * (-(depth as f64)).exp() + 2.0;
        prop_assert!(
            (violations as f64) <= allowed,
            "{violations} of {} keys exceed eps*N={budget} (allowed {allowed:.1})",
            truth.len()
        );
    }

    /// Identical seed and multiset of additions — in any order — must
    /// produce identical estimates: the sketch has no ambient RNG and
    /// its updates commute.
    #[test]
    fn cm_is_deterministic_and_order_free(
        entries in proptest::collection::vec((any::<u64>(), 1u64..50), 1..100),
        seed in any::<u64>(),
    ) {
        let mut forward = CountMinSketch::new(512, 4, seed);
        for (key, count) in &entries {
            forward.add(*key, *count);
        }
        let mut backward = CountMinSketch::new(512, 4, seed);
        for (key, count) in entries.iter().rev() {
            backward.add(*key, *count);
        }
        prop_assert_eq!(forward.total(), backward.total());
        for (key, _) in &entries {
            prop_assert_eq!(forward.estimate(*key), backward.estimate(*key));
        }
    }

    /// The HLL estimate of n distinct keys stays within a 6-sigma band
    /// of the precision-implied relative error (1.04/sqrt(2^p)), with a
    /// small absolute floor for the tiny-n linear-counting regime.
    #[test]
    fn hll_error_is_within_the_precision_bound(
        n in 1u64..5_000,
        precision in 8u8..14,
        seed in any::<u64>(),
        base in any::<u64>(),
    ) {
        let mut hll = HyperLogLog::new(precision, seed);
        for i in 0..n {
            hll.insert(base.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        }
        let est = hll.estimate();
        let tolerance = (6.0 * hll.relative_error() * n as f64).max(3.0);
        prop_assert!(
            (est - n as f64).abs() <= tolerance,
            "estimate {est:.1} vs true {n} (precision {precision}, tolerance {tolerance:.1})"
        );
    }

    /// Fixed seed ⇒ bit-identical estimate across runs, and re-inserting
    /// keys already seen never moves it (registers only take maxima).
    #[test]
    fn hll_is_deterministic_and_reinsert_stable(
        keys in proptest::collection::vec(any::<u64>(), 1..500),
        precision in 6u8..14,
        seed in any::<u64>(),
    ) {
        let mut first = HyperLogLog::new(precision, seed);
        let mut second = HyperLogLog::new(precision, seed);
        for key in &keys {
            first.insert(*key);
            second.insert(*key);
        }
        prop_assert_eq!(first.estimate().to_bits(), second.estimate().to_bits());

        let before = first.estimate_rounded();
        for key in &keys {
            first.insert(*key);
        }
        prop_assert_eq!(first.estimate_rounded(), before);
    }
}
