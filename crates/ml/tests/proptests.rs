//! Property-based tests for the ML toolbox.

use dnsnoise_ml::{
    cross_validate, stratified_kfold, Cart, ConfusionMatrix, Dataset, GaussianNb, KnnClassifier,
    LadTree, Learner, LogisticRegression, RegressionStump, RocCurve,
};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2-D rows where the label correlates (noisily) with x0 so learners
    // have something learnable, plus guaranteed class balance.
    proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0, any::<bool>()), 12..80).prop_map(
        |rows| {
            let mut feats = Vec::new();
            let mut labels = Vec::new();
            for (i, (a, b, noise)) in rows.into_iter().enumerate() {
                let label = if i % 5 == 0 { noise } else { a > 0.0 };
                feats.push(vec![a, b]);
                labels.push(label);
            }
            // Force at least one row of each class.
            feats.push(vec![100.0, 0.0]);
            labels.push(true);
            feats.push(vec![-100.0, 0.0]);
            labels.push(false);
            Dataset::new(feats, labels).unwrap()
        },
    )
}

proptest! {
    /// Every learner emits scores in [0, 1] everywhere.
    #[test]
    fn scores_are_probabilities(data in arb_dataset(), x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let learners: Vec<Box<dyn Learner>> = vec![
            Box::new(LadTree::with_iterations(15)),
            Box::new(Cart::default()),
            Box::new(GaussianNb::default()),
            Box::new(KnnClassifier::default()),
            Box::new(LogisticRegression { epochs: 50, ..Default::default() }),
        ];
        for learner in learners {
            let model = learner.fit(&data);
            let s = model.score(&[x, y]);
            prop_assert!((0.0..=1.0).contains(&s), "{} scored {s}", learner.name());
        }
    }

    /// Stump fitting never increases weighted SSE versus the constant fit.
    #[test]
    fn stump_at_least_matches_constant(
        rows in proptest::collection::vec((-10.0f64..10.0, -5.0f64..5.0, 0.1f64..2.0), 2..50)
    ) {
        let x: Vec<Vec<f64>> = rows.iter().map(|(a, _, _)| vec![*a]).collect();
        let xs: Vec<&[f64]> = x.iter().map(Vec::as_slice).collect();
        let z: Vec<f64> = rows.iter().map(|(_, z, _)| *z).collect();
        let w: Vec<f64> = rows.iter().map(|(_, _, w)| *w).collect();
        let stump = RegressionStump::fit(&xs, &z, &w);

        let w_total: f64 = w.iter().sum();
        let mean = z.iter().zip(&w).map(|(zi, wi)| zi * wi).sum::<f64>() / w_total;
        let sse_const: f64 = z.iter().zip(&w).map(|(zi, wi)| wi * (zi - mean).powi(2)).sum();
        let sse_stump: f64 = x
            .iter()
            .zip(&z)
            .zip(&w)
            .map(|((xi, zi), wi)| wi * (zi - stump.predict(xi)).powi(2))
            .sum();
        prop_assert!(sse_stump <= sse_const + 1e-6, "stump {sse_stump} vs const {sse_const}");
    }

    /// Stratified folds partition the index set and balance classes to
    /// within one element.
    #[test]
    fn kfold_partitions(labels in proptest::collection::vec(any::<bool>(), 10..120), k in 2usize..10, seed in any::<u64>()) {
        prop_assume!(k <= labels.len());
        let folds = stratified_kfold(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        let pos_counts: Vec<usize> = folds
            .iter()
            .map(|f| f.iter().filter(|&&i| labels[i]).count())
            .collect();
        let max = pos_counts.iter().max().unwrap();
        let min = pos_counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "positive imbalance: {pos_counts:?}");
    }

    /// ROC curves are monotone staircases from (0,0) to (1,1) with AUC in
    /// [0, 1]; tpr_at_fpr is monotone in its argument.
    #[test]
    fn roc_is_monotone(scored in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 2..120)) {
        prop_assume!(scored.iter().any(|(_, l)| *l) && scored.iter().any(|(_, l)| !*l));
        let roc = RocCurve::from_scores(&scored);
        let pts = roc.points();
        prop_assert_eq!((pts[0].0, pts[0].1), (0.0, 0.0));
        let last = pts.last().unwrap();
        prop_assert!((last.0 - 1.0).abs() < 1e-9 && (last.1 - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        let auc = roc.auc();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc));
        prop_assert!(roc.tpr_at_fpr(0.1) <= roc.tpr_at_fpr(0.5) + 1e-12);
    }

    /// Confusion-matrix counts always sum to the sample count, and TPR at
    /// threshold 0 is 1 (everything classified positive).
    #[test]
    fn confusion_conservation(scored in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..100)) {
        let m = ConfusionMatrix::at_threshold(&scored, 0.5);
        prop_assert_eq!((m.tp + m.fp + m.tn + m.fn_) as usize, scored.len());
        let all_pos = ConfusionMatrix::at_threshold(&scored, 0.0);
        prop_assert_eq!(all_pos.tn + all_pos.fn_, 0);
    }

    /// Cross validation scores every row exactly once and the AUC on the
    /// linearly-separable component is strong.
    #[test]
    fn cv_covers_every_row(data in arb_dataset(), seed in any::<u64>()) {
        let outcome = cross_validate(&LadTree::with_iterations(10), &data, 5, seed);
        prop_assert_eq!(outcome.scored.len(), data.len());
        for (i, (_, label)) in outcome.scored.iter().enumerate() {
            prop_assert_eq!(*label, data.label(i));
        }
    }
}
