//! Evaluation: stratified k-fold cross validation, ROC curves, confusion
//! matrices — the paper's Fig. 12 protocol.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::Learner;

/// Counts of a thresholded binary classifier's outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Positives classified positive.
    pub tp: u64,
    /// Negatives classified positive.
    pub fp: u64,
    /// Negatives classified negative.
    pub tn: u64,
    /// Positives classified negative.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds a matrix from `(score, label)` pairs at `threshold`.
    pub fn at_threshold(scored: &[(f64, bool)], threshold: f64) -> Self {
        let mut m = ConfusionMatrix::default();
        for &(score, label) in scored {
            match (score >= threshold, label) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// True positive rate (recall); 0 with no positives.
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            0.0
        } else {
            self.tp as f64 / p as f64
        }
    }

    /// False positive rate; 0 with no negatives.
    pub fn fpr(&self) -> f64 {
        let n = self.fp + self.tn;
        if n == 0 {
            0.0
        } else {
            self.fp as f64 / n as f64
        }
    }

    /// Precision; 0 with no positive predictions.
    pub fn precision(&self) -> f64 {
        let pp = self.tp + self.fp;
        if pp == 0 {
            0.0
        } else {
            self.tp as f64 / pp as f64
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// An ROC curve over out-of-fold scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// `(fpr, tpr, threshold)` triples in increasing-FPR order.
    points: Vec<(f64, f64, f64)>,
}

impl RocCurve {
    /// Builds the curve from `(score, label)` pairs.
    pub fn from_scores(scored: &[(f64, bool)]) -> Self {
        let mut sorted: Vec<(f64, bool)> = scored.to_vec();
        // Decreasing score: thresholds sweep from strict to lax.
        sorted.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        let p = sorted.iter().filter(|(_, l)| *l).count() as f64;
        let n = sorted.len() as f64 - p;
        let mut points = vec![(0.0, 0.0, f64::INFINITY)];
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut i = 0;
        while i < sorted.len() {
            let score = sorted[i].0;
            // Consume ties together so the curve is threshold-consistent.
            while i < sorted.len() && sorted[i].0 == score {
                if sorted[i].1 {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
                i += 1;
            }
            points.push((
                if n > 0.0 { fp / n } else { 0.0 },
                if p > 0.0 { tp / p } else { 0.0 },
                score,
            ));
        }
        RocCurve { points }
    }

    /// The `(fpr, tpr, threshold)` points.
    pub fn points(&self) -> &[(f64, f64, f64)] {
        &self.points
    }

    /// Area under the curve (trapezoidal).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let (x0, y0, _) = w[0];
            let (x1, y1, _) = w[1];
            area += (x1 - x0) * (y0 + y1) / 2.0;
        }
        area
    }

    /// The TPR achieved at the largest threshold whose FPR does not exceed
    /// `max_fpr` (how the paper quotes "97% TPR at 1% FPR").
    pub fn tpr_at_fpr(&self, max_fpr: f64) -> f64 {
        self.points
            .iter()
            .filter(|(fpr, _, _)| *fpr <= max_fpr)
            .map(|&(_, tpr, _)| tpr)
            .fold(0.0, f64::max)
    }

    /// The `(fpr, tpr)` operating point at decision threshold `theta`.
    pub fn operating_point(&self, theta: f64) -> (f64, f64) {
        // The curve stores decreasing thresholds; find the last point whose
        // threshold is still >= theta.
        let mut op = (0.0, 0.0);
        for &(fpr, tpr, thr) in &self.points {
            if thr >= theta {
                op = (fpr, tpr);
            }
        }
        op
    }
}

/// The pooled out-of-fold scores from a cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvOutcome {
    /// `(score, true label)` for every row, scored by the model that did
    /// not train on it.
    pub scored: Vec<(f64, bool)>,
    /// The learner's display name.
    pub learner: String,
}

impl CvOutcome {
    /// The ROC curve of the pooled scores.
    pub fn roc(&self) -> RocCurve {
        RocCurve::from_scores(&self.scored)
    }

    /// Confusion matrix at a threshold.
    pub fn confusion(&self, threshold: f64) -> ConfusionMatrix {
        ConfusionMatrix::at_threshold(&self.scored, threshold)
    }
}

/// Splits `0..len` into `k` stratified folds: every fold receives a
/// near-equal share of each class.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the dataset size.
pub fn stratified_kfold(labels: &[bool], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0 && k <= labels.len(), "fold count must be in 1..=len");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (i, idx) in pos.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    for (i, idx) in neg.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    folds
}

/// Standard k-fold cross validation (the paper uses `k = 10`): trains on
/// k−1 folds, scores the held-out fold, pools all out-of-fold scores.
pub fn cross_validate(learner: &dyn Learner, data: &Dataset, k: usize, seed: u64) -> CvOutcome {
    let folds = stratified_kfold(data.labels(), k, seed);
    let mut scored = vec![(0.0, false); data.len()];
    for held in 0..k {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != held)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        let model = learner.fit(&data.subset(&train_idx));
        for &i in &folds[held] {
            scored[i] = (model.score(data.row(i)), data.label(i));
        }
    }
    CvOutcome { scored, learner: learner.name().to_owned() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladtree::LadTree;

    #[test]
    fn confusion_matrix_counts() {
        let scored = vec![(0.9, true), (0.8, false), (0.2, true), (0.1, false)];
        let m = ConfusionMatrix::at_threshold(&scored, 0.5);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (1, 1, 1, 1));
        assert_eq!(m.tpr(), 0.5);
        assert_eq!(m.fpr(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let scored: Vec<(f64, bool)> = (0..100).map(|i| (f64::from(i), i >= 50)).collect();
        let roc = RocCurve::from_scores(&scored);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        assert_eq!(roc.tpr_at_fpr(0.0), 1.0);
    }

    #[test]
    fn random_scores_give_auc_half() {
        // Both classes share the identical score distribution: every score
        // value 0..100 appears equally often in each class.
        let scored: Vec<(f64, bool)> = (0..1000).map(|i| (f64::from(i % 100), i < 500)).collect();
        let roc = RocCurve::from_scores(&scored);
        assert!((roc.auc() - 0.5).abs() < 1e-9, "auc {}", roc.auc());
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scored: Vec<(f64, bool)> = (0..100).map(|i| (f64::from(i), i < 50)).collect();
        let roc = RocCurve::from_scores(&scored);
        assert!(roc.auc() < 0.01);
    }

    #[test]
    fn operating_point_moves_with_theta() {
        let scored: Vec<(f64, bool)> = (0..100).map(|i| (f64::from(i) / 100.0, i >= 40)).collect();
        let roc = RocCurve::from_scores(&scored);
        let strict = roc.operating_point(0.9);
        let lax = roc.operating_point(0.1);
        assert!(strict.1 < lax.1, "higher theta → lower TPR");
        assert!(strict.0 <= lax.0);
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let labels: Vec<bool> = (0..100).map(|i| i < 30).collect();
        let folds = stratified_kfold(&labels, 10, 1);
        for fold in &folds {
            let pos = fold.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 3, "each fold gets 3 of 30 positives");
            assert_eq!(fold.len(), 10);
        }
        // Folds partition the indices.
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cross_validation_scores_every_row_out_of_fold() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let outcome = cross_validate(&LadTree::with_iterations(20), &data, 10, 7);
        assert_eq!(outcome.scored.len(), 60);
        let roc = outcome.roc();
        assert!(roc.auc() > 0.95, "separable problem should CV well, auc {}", roc.auc());
        assert_eq!(outcome.learner, "LADTree");
    }
}
