//! A CART-style decision tree (Gini impurity), one of the paper's
//! model-selection baselines.

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::{Learner, Model};

/// The CART learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cart {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_split: usize,
}

impl Default for Cart {
    fn default() -> Self {
        Cart { max_depth: 8, min_split: 4 }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Positive-class fraction at the leaf.
        p: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CartModel {
    root: Node,
}

impl Model for CartModel {
    fn score(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { p } => return *p,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

fn grow(data: &Dataset, indices: &[usize], depth: usize, cfg: &Cart) -> Node {
    let total = indices.len() as f64;
    let pos = indices.iter().filter(|&&i| data.label(i)).count() as f64;
    let leaf = Node::Leaf { p: if total > 0.0 { pos / total } else { 0.5 } };
    if depth >= cfg.max_depth || indices.len() < cfg.min_split || pos == 0.0 || pos == total {
        return leaf;
    }

    let parent_impurity = gini(pos, total);
    let mut best: Option<(f64, usize, f64)> = None;
    let mut order = indices.to_vec();
    for j in 0..data.dim() {
        order.sort_unstable_by(|&a, &b| {
            data.row(a)[j].partial_cmp(&data.row(b)[j]).expect("finite features")
        });
        let mut pos_left = 0.0;
        for k in 0..order.len() - 1 {
            if data.label(order[k]) {
                pos_left += 1.0;
            }
            if data.row(order[k])[j] == data.row(order[k + 1])[j] {
                continue;
            }
            let n_left = (k + 1) as f64;
            let n_right = total - n_left;
            let pos_right = pos - pos_left;
            let impurity = (n_left / total) * gini(pos_left, n_left)
                + (n_right / total) * gini(pos_right, n_right);
            let gain = parent_impurity - impurity;
            let threshold = (data.row(order[k])[j] + data.row(order[k + 1])[j]) / 2.0;
            if best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, j, threshold));
            }
        }
    }

    match best {
        // Zero-gain splits are allowed on impure nodes: XOR-like problems
        // have no first split with positive Gini gain, yet the children
        // become separable (depth bounds the recursion).
        Some((gain, feature, threshold)) if gain > -1e-12 => {
            let (li, ri): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| data.row(i)[feature] <= threshold);
            if li.is_empty() || ri.is_empty() {
                return leaf;
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(data, &li, depth + 1, cfg)),
                right: Box::new(grow(data, &ri, depth + 1, cfg)),
            }
        }
        _ => leaf,
    }
}

impl Learner for Cart {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        let indices: Vec<usize> = (0..data.len()).collect();
        Box::new(CartModel { root: grow(data, &indices, 0, self) })
    }

    fn name(&self) -> &'static str {
        "CART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_axis_aligned_split() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = Cart::default().fit(&data);
        assert!(model.score(&[30.0]) > 0.9);
        assert!(model.score(&[5.0]) < 0.1);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    rows.push(vec![f64::from(a), f64::from(b)]);
                    labels.push((a ^ b) == 1);
                }
            }
        }
        let data = Dataset::new(rows, labels).unwrap();
        let model = Cart { max_depth: 2, min_split: 2 }.fit(&data);
        assert!(model.score(&[1.0, 0.0]) > 0.9);
        assert!(model.score(&[1.0, 1.0]) < 0.1);
    }

    #[test]
    fn depth_zero_gives_prior() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![true, true, true, false];
        let data = Dataset::new(rows, labels).unwrap();
        let model = Cart { max_depth: 0, min_split: 2 }.fit(&data);
        assert!((model.score(&[0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pure_nodes_stop_splitting() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![true, true];
        let data = Dataset::new(rows, labels).unwrap();
        let model = Cart::default().fit(&data);
        assert_eq!(model.score(&[0.5]), 1.0);
    }
}
