//! Logistic regression — a model-selection baseline (§V-C).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::{Learner, Model};

/// Logistic regression trained by full-batch gradient descent on
/// standardised features with L2 regularisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 penalty.
    pub l2: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression { epochs: 300, learning_rate: 0.5, l2: 1e-4 }
    }
}

/// A trained logistic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
    stats: Vec<(f64, f64)>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Model for LogisticModel {
    fn score(&self, x: &[f64]) -> f64 {
        let z: f64 = x
            .iter()
            .zip(&self.stats)
            .zip(&self.weights)
            .map(|((v, (m, s)), w)| w * (v - m) / s)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }
}

impl Learner for LogisticRegression {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        let stats = data.column_stats();
        let n = data.len();
        let dim = data.dim();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| data.row(i).iter().zip(&stats).map(|(v, (m, s))| (v - m) / s).collect())
            .collect();
        let y: Vec<f64> = data.labels().iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();

        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0f64; dim];
            let mut gb = 0.0f64;
            for i in 0..n {
                let z: f64 = rows[i].iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>() + b;
                let err = sigmoid(z) - y[i];
                for j in 0..dim {
                    gw[j] += err * rows[i][j];
                }
                gb += err;
            }
            let inv_n = 1.0 / n as f64;
            for j in 0..dim {
                w[j] -= self.learning_rate * (gw[j] * inv_n + self.l2 * w[j]);
            }
            b -= self.learning_rate * gb * inv_n;
        }

        Box::new(LogisticModel { weights: w, bias: b, stats })
    }

    fn name(&self) -> &'static str {
        "LogisticRegression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary() {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![f64::from(i), f64::from(100 - i)]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = LogisticRegression::default().fit(&data);
        assert!(model.score(&[90.0, 10.0]) > 0.9);
        assert!(model.score(&[10.0, 90.0]) < 0.1);
    }

    #[test]
    fn prior_dominates_flat_features() {
        let rows = vec![vec![1.0]; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 8).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = LogisticRegression::default().fit(&data);
        let s = model.score(&[1.0]);
        assert!(s > 0.6, "prior-ish score {s}");
    }

    #[test]
    fn scores_bounded() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = LogisticRegression::default().fit(&data);
        for v in [-1e6, 0.0, 1e6] {
            let s = model.score(&[v]);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
