//! k-nearest-neighbours — a model-selection baseline (§V-C).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::{Learner, Model};

/// The k-NN learner. Features are standardised (z-scored) with the
/// training set's statistics before distances are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnClassifier {
    /// Number of neighbours.
    pub k: usize,
}

impl Default for KnnClassifier {
    fn default() -> Self {
        KnnClassifier { k: 5 }
    }
}

/// A trained (memorised) k-NN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnModel {
    k: usize,
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
    stats: Vec<(f64, f64)>,
}

impl KnnModel {
    fn standardise(&self, x: &[f64]) -> Vec<f64> {
        x.iter().zip(&self.stats).map(|(v, (m, s))| (v - m) / s).collect()
    }
}

impl Model for KnnModel {
    fn score(&self, x: &[f64]) -> f64 {
        let q = self.standardise(x);
        let mut dists: Vec<(f64, bool)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &l)| {
                let d: f64 = r.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                (d, l)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists
            .select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let pos = dists[..k].iter().filter(|(_, l)| *l).count();
        pos as f64 / k as f64
    }
}

impl Learner for KnnClassifier {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(self.k > 0, "k must be positive");
        let stats = data.column_stats();
        let rows: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.row(i).iter().zip(&stats).map(|(v, (m, s))| (v - m) / s).collect())
            .collect();
        Box::new(KnnModel { k: self.k, rows, labels: data.labels().to_vec(), stats })
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn neighbours_vote() {
        let model = KnnClassifier { k: 3 }.fit(&line_data());
        assert_eq!(model.score(&[39.0]), 1.0);
        assert_eq!(model.score(&[0.0]), 0.0);
    }

    #[test]
    fn boundary_is_mixed() {
        let model = KnnClassifier { k: 4 }.fit(&line_data());
        let s = model.score(&[19.5]);
        assert!(s > 0.0 && s < 1.0, "boundary score {s}");
    }

    #[test]
    fn standardisation_makes_scales_irrelevant() {
        // Feature 1 is the signal at a tiny scale; feature 0 is huge noise
        // with zero variance (constant), which standardisation neutralises.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![1e9, f64::from(i) * 1e-6]).collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = KnnClassifier { k: 3 }.fit(&data);
        assert_eq!(model.score(&[1e9, 39e-6]), 1.0);
        assert_eq!(model.score(&[1e9, 0.0]), 0.0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![false, true];
        let data = Dataset::new(rows, labels).unwrap();
        let model = KnnClassifier { k: 100 }.fit(&data);
        assert_eq!(model.score(&[0.0]), 0.5);
    }
}
