//! Gaussian Naive Bayes — a model-selection baseline (§V-C).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::{Learner, Model};

/// The Gaussian NB learner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    /// Variance floor added to every per-class feature variance.
    pub var_smoothing: f64,
}

/// A trained Gaussian NB model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNbModel {
    prior_pos: f64,
    /// Per-feature `(mean, var)` for the positive class.
    pos: Vec<(f64, f64)>,
    /// Per-feature `(mean, var)` for the negative class.
    neg: Vec<(f64, f64)>,
}

fn class_stats(data: &Dataset, want: bool, floor: f64) -> Vec<(f64, f64)> {
    let rows: Vec<&[f64]> =
        (0..data.len()).filter(|&i| data.label(i) == want).map(|i| data.row(i)).collect();
    let n = rows.len().max(1) as f64;
    (0..data.dim())
        .map(|j| {
            let mean = rows.iter().map(|r| r[j]).sum::<f64>() / n;
            let var = rows.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            (mean, var + floor)
        })
        .collect()
}

fn log_likelihood(stats: &[(f64, f64)], x: &[f64]) -> f64 {
    stats
        .iter()
        .zip(x)
        .map(|(&(mean, var), &v)| {
            -0.5 * ((v - mean).powi(2) / var + var.ln() + std::f64::consts::TAU.ln())
        })
        .sum()
}

impl Model for GaussianNbModel {
    fn score(&self, x: &[f64]) -> f64 {
        let lp = self.prior_pos.max(1e-12).ln() + log_likelihood(&self.pos, x);
        let ln_ = (1.0 - self.prior_pos).max(1e-12).ln() + log_likelihood(&self.neg, x);
        // Softmax over the two log-joint scores.
        let m = lp.max(ln_);
        let ep = (lp - m).exp();
        let en = (ln_ - m).exp();
        ep / (ep + en)
    }
}

impl Learner for GaussianNb {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        let floor = if self.var_smoothing > 0.0 { self.var_smoothing } else { 1e-9 };
        Box::new(GaussianNbModel {
            prior_pos: data.positives() as f64 / data.len() as f64,
            pos: class_stats(data, true, floor),
            neg: class_stats(data, false, floor),
        })
    }

    fn name(&self) -> &'static str {
        "NaiveBayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> Dataset {
        // Two well-separated blobs along both axes.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let jitter = f64::from(i % 10) / 10.0;
            rows.push(vec![0.0 + jitter, 0.0 - jitter]);
            labels.push(false);
            rows.push(vec![10.0 + jitter, 10.0 - jitter]);
            labels.push(true);
        }
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let model = GaussianNb::default().fit(&gaussian_blobs());
        assert!(model.score(&[10.0, 10.0]) > 0.99);
        assert!(model.score(&[0.0, 0.0]) < 0.01);
    }

    #[test]
    fn prior_shows_at_ambiguous_points() {
        // 3:1 positive prior, identical likelihoods.
        let rows = vec![vec![1.0]; 4];
        let labels = vec![true, true, true, false];
        let data = Dataset::new(rows, labels).unwrap();
        let model = GaussianNb::default().fit(&data);
        assert!((model.score(&[1.0]) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn scores_in_unit_interval_even_far_away() {
        let model = GaussianNb::default().fit(&gaussian_blobs());
        for v in [-1e9, 0.0, 1e9] {
            let s = model.score(&[v, v]);
            assert!((0.0..=1.0).contains(&s), "score {s} at {v}");
        }
    }
}
