//! Feature matrices with binary labels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense feature matrix with one boolean label per row.
///
/// The positive class (`true`) is "disposable" throughout the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
    dim: usize,
}

/// Errors constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Rows and labels had different lengths.
    LengthMismatch {
        /// Number of feature rows supplied.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A row had a different dimensionality than the first row.
    RaggedRow {
        /// Index of the offending row.
        index: usize,
        /// Its length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// A feature value was NaN or infinite.
    NonFinite {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
    /// The dataset was empty.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DatasetError::RaggedRow { index, got, expected } => {
                write!(f, "row {index} has {got} features, expected {expected}")
            }
            DatasetError::NonFinite { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col}")
            }
            DatasetError::Empty => write!(f, "empty dataset"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset, validating shape and finiteness.
    ///
    /// # Errors
    ///
    /// Returns an error for empty input, ragged rows, length mismatches or
    /// non-finite feature values.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LengthMismatch { rows: rows.len(), labels: labels.len() });
        }
        let dim = rows[0].len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(DatasetError::RaggedRow { index: i, got: row.len(), expected: dim });
            }
            for (j, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFinite { row: i, col: j });
                }
            }
        }
        Ok(Dataset { rows, labels, dim })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no rows (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature row at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// The label of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Count of positive rows.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// A new dataset containing the given row indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            dim: self.dim,
        }
    }

    /// Per-column `(mean, std)` used for feature standardisation; a std of
    /// zero is reported as 1 so division is always safe.
    pub fn column_stats(&self) -> Vec<(f64, f64)> {
        let n = self.rows.len() as f64;
        (0..self.dim)
            .map(|j| {
                let mean = self.rows.iter().map(|r| r[j]).sum::<f64>() / n;
                let var = self.rows.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
                let std = var.sqrt();
                (mean, if std > 0.0 { std } else { 1.0 })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![true, false]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert!(d.label(0));
        assert_eq!(d.positives(), 1);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(DatasetError::Empty));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![true, false]),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]),
            Err(DatasetError::RaggedRow { index: 1, .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![f64::NAN]], vec![true]),
            Err(DatasetError::NonFinite { row: 0, col: 0 })
        ));
    }

    #[test]
    fn subset_picks_rows() {
        let d =
            Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![false, true, false]).unwrap();
        let s = d.subset(&[2, 1]);
        assert_eq!(s.row(0), &[2.0]);
        assert!(s.label(1));
    }

    #[test]
    fn column_stats_handle_constant_columns() {
        let d = Dataset::new(vec![vec![5.0, 1.0], vec![5.0, 3.0]], vec![true, false]).unwrap();
        let stats = d.column_stats();
        assert_eq!(stats[0], (5.0, 1.0)); // zero variance → std reported as 1
        assert_eq!(stats[1].0, 2.0);
    }
}
