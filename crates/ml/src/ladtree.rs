//! The LAD tree: LogitBoost over regression stumps.
//!
//! Weka's `LADTree` — the classifier the paper selects (§V-C) — grows an
//! alternating decision tree with the LogitBoost procedure of Friedman,
//! Hastie & Tibshirani ("Additive logistic regression", 2000). Each boost
//! round fits a weighted least-squares stump to the working response; the
//! ensemble's additive score is squashed to a probability. For
//! tabular 8-feature data this stump ensemble is exactly the model class
//! the Weka implementation searches.

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::stump::RegressionStump;
use crate::{Learner, Model};

/// The LAD tree learner (LogitBoost + stumps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadTree {
    /// Number of boosting iterations (stumps).
    pub iterations: usize,
    /// Shrinkage applied to each stump's contribution.
    pub shrinkage: f64,
    /// Clamp for the working response `z` (LogitBoost's standard guard).
    pub z_max: f64,
}

impl Default for LadTree {
    fn default() -> Self {
        LadTree { iterations: 50, shrinkage: 0.5, z_max: 4.0 }
    }
}

impl LadTree {
    /// A learner with a custom iteration count.
    pub fn with_iterations(iterations: usize) -> Self {
        LadTree { iterations, ..LadTree::default() }
    }
}

/// A trained LAD tree ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadTreeModel {
    stumps: Vec<RegressionStump>,
    shrinkage: f64,
}

impl LadTreeModel {
    /// Reassembles a model from its parts (used by [`crate::persist`]).
    pub fn from_parts(stumps: Vec<RegressionStump>, shrinkage: f64) -> Self {
        LadTreeModel { stumps, shrinkage }
    }

    /// The per-stump shrinkage factor.
    pub fn shrinkage(&self) -> f64 {
        self.shrinkage
    }

    /// The fitted stumps in boosting order.
    pub fn stumps(&self) -> &[RegressionStump] {
        &self.stumps
    }

    /// Number of stumps in the ensemble.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// Returns `true` when the ensemble is empty (predicts 0.5 always).
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// The additive (pre-squash) score `F(x)`.
    pub fn raw_score(&self, x: &[f64]) -> f64 {
        self.stumps.iter().map(|s| s.predict(x) * self.shrinkage).sum()
    }
}

impl Model for LadTreeModel {
    fn score(&self, x: &[f64]) -> f64 {
        // p = 1 / (1 + e^{-2F}) per the LogitBoost ±1 formulation.
        let f = self.raw_score(x);
        1.0 / (1.0 + (-2.0 * f).exp())
    }
}

impl LadTree {
    /// Like [`Learner::fit`] but returns the concrete model type (needed
    /// for persistence).
    pub fn fit_ladtree(&self, data: &Dataset) -> LadTreeModel {
        let n = data.len();
        let rows: Vec<&[f64]> = (0..n).map(|i| data.row(i)).collect();
        // y* ∈ {0, 1}.
        let y: Vec<f64> = data.labels().iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();

        let mut f_scores = vec![0.0f64; n];
        let mut stumps = Vec::with_capacity(self.iterations);
        let mut z = vec![0.0f64; n];
        let mut w = vec![0.0f64; n];

        for _ in 0..self.iterations {
            for i in 0..n {
                let p = 1.0 / (1.0 + (-2.0 * f_scores[i]).exp());
                let var = (p * (1.0 - p)).max(1e-10);
                z[i] = ((y[i] - p) / var).clamp(-self.z_max, self.z_max);
                w[i] = var;
            }
            let stump = RegressionStump::fit(&rows, &z, &w);
            for i in 0..n {
                f_scores[i] += stump.predict(rows[i]) * self.shrinkage;
            }
            stumps.push(stump);
        }

        LadTreeModel { stumps, shrinkage: self.shrinkage }
    }
}

impl Learner for LadTree {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        Box::new(self.fit_ladtree(data))
    }

    fn name(&self) -> &'static str {
        "LADTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn or_like() -> Dataset {
        // A problem a single stump cannot solve but an additive stump
        // ensemble can: positive iff either coordinate is high. (XOR is
        // deliberately not used: additive models cannot represent it.)
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..25 {
                    rows.push(vec![f64::from(a), f64::from(b)]);
                    labels.push(a == 1 || b == 1);
                }
            }
        }
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn separable_problem_is_learned() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = LadTree::default().fit(&data);
        assert!(model.score(&[80.0]) > 0.95);
        assert!(model.score(&[20.0]) < 0.05);
    }

    #[test]
    fn boosting_solves_or() {
        let data = or_like();
        let model = LadTree::with_iterations(200).fit(&data);
        assert!(model.score(&[1.0, 0.0]) > 0.8, "10 → {}", model.score(&[1.0, 0.0]));
        assert!(model.score(&[0.0, 1.0]) > 0.8);
        assert!(model.score(&[1.0, 1.0]) > 0.8);
        assert!(model.score(&[0.0, 0.0]) < 0.2);
    }

    #[test]
    fn scores_are_probabilities() {
        let data = or_like();
        let model = LadTree::default().fit(&data);
        for a in [0.0, 0.5, 1.0] {
            for b in [0.0, 0.5, 1.0] {
                let s = model.score(&[a, b]);
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn zero_iterations_predicts_half() {
        let data = or_like();
        let model = LadTree::with_iterations(0).fit(&data);
        assert_eq!(model.score(&[0.0, 0.0]), 0.5);
    }

    #[test]
    fn classify_threshold() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let labels: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let model = LadTree::default().fit(&data);
        assert!(model.classify(&[19.0], 0.9));
        assert!(!model.classify(&[0.0], 0.1));
    }
}
