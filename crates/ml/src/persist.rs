//! Plain-text persistence for trained LAD-tree models.
//!
//! A trained miner is a long-lived operational asset (the paper trains
//! once and mines daily), so the model needs to survive process restarts.
//! The format is line-oriented and human-auditable:
//!
//! ```text
//! ladtree v1 shrinkage=0.5
//! stump feature=6 threshold=0.45 left=1.2 right=-0.8
//! …
//! ```

use std::fmt::Write as _;

use crate::ladtree::LadTreeModel;
use crate::stump::RegressionStump;

/// Errors while parsing a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The header line was missing or malformed.
    BadHeader(String),
    /// A stump line failed to parse (1-based line number, description).
    BadStump(usize, String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader(line) => write!(f, "bad model header: {line:?}"),
            PersistError::BadStump(n, msg) => write!(f, "line {n}: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialises a model to the text format.
pub fn model_to_text(model: &LadTreeModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ladtree v1 shrinkage={}", model.shrinkage());
    for stump in model.stumps() {
        let _ = writeln!(
            out,
            "stump feature={} threshold={} left={} right={}",
            stump.feature, stump.threshold, stump.left, stump.right
        );
    }
    out
}

fn field<'a>(part: &'a str, key: &str, line: usize) -> Result<&'a str, PersistError> {
    part.strip_prefix(key)
        .and_then(|s| s.strip_prefix('='))
        .ok_or_else(|| PersistError::BadStump(line, format!("expected {key}=…, got {part:?}")))
}

/// Parses a model from the text format. Blank lines and `#` comments are
/// skipped.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn model_from_text(text: &str) -> Result<LadTreeModel, PersistError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines.next().ok_or_else(|| PersistError::BadHeader("<empty>".into()))?;
    let shrinkage: f64 = header
        .strip_prefix("ladtree v1 shrinkage=")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PersistError::BadHeader(header.to_owned()))?;

    let mut stumps = Vec::new();
    for (n, line) in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("stump") => {}
            _ => return Err(PersistError::BadStump(n, "expected 'stump'".into())),
        }
        let feature = field(parts.next().unwrap_or(""), "feature", n)?
            .parse::<usize>()
            .map_err(|e| PersistError::BadStump(n, e.to_string()))?;
        let threshold = field(parts.next().unwrap_or(""), "threshold", n)?
            .parse::<f64>()
            .map_err(|e| PersistError::BadStump(n, e.to_string()))?;
        let left = field(parts.next().unwrap_or(""), "left", n)?
            .parse::<f64>()
            .map_err(|e| PersistError::BadStump(n, e.to_string()))?;
        let right = field(parts.next().unwrap_or(""), "right", n)?
            .parse::<f64>()
            .map_err(|e| PersistError::BadStump(n, e.to_string()))?;
        if !(threshold.is_finite() || threshold == f64::INFINITY)
            || !left.is_finite()
            || !right.is_finite()
        {
            return Err(PersistError::BadStump(n, "non-finite stump parameters".into()));
        }
        stumps.push(RegressionStump { feature, threshold, left, right });
    }
    Ok(LadTreeModel::from_parts(stumps, shrinkage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::ladtree::LadTree;
    use crate::Model;

    fn trained() -> LadTreeModel {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![f64::from(i), f64::from(60 - i)]).collect();
        let labels: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let data = Dataset::new(rows, labels).unwrap();
        LadTree::default().fit_ladtree(&data)
    }

    #[test]
    fn roundtrip_preserves_scores() {
        let model = trained();
        let text = model_to_text(&model);
        let back = model_from_text(&text).unwrap();
        for i in 0..60 {
            let x = [f64::from(i), f64::from(60 - i)];
            assert!((model.score(&x) - back.score(&x)).abs() < 1e-12, "score diverged at {i}");
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let model = trained();
        let mut text = String::from("# trained on day 0\n\n");
        text.push_str(&model_to_text(&model));
        assert!(model_from_text(&text).is_ok());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(matches!(model_from_text(""), Err(PersistError::BadHeader(_))));
        assert!(matches!(model_from_text("gradientboost v9"), Err(PersistError::BadHeader(_))));
        let bad = "ladtree v1 shrinkage=0.5\nstump feature=x threshold=1 left=1 right=1\n";
        assert!(matches!(model_from_text(bad), Err(PersistError::BadStump(2, _))));
        let nan = "ladtree v1 shrinkage=0.5\nstump feature=0 threshold=1 left=NaN right=1\n";
        assert!(matches!(model_from_text(nan), Err(PersistError::BadStump(2, _))));
    }

    #[test]
    fn infinity_threshold_survives() {
        // Constant stumps use an infinite threshold.
        let text = "ladtree v1 shrinkage=0.5\nstump feature=0 threshold=inf left=0.3 right=0.3\n";
        let model = model_from_text(text).unwrap();
        assert!((model.score(&[123.0]) - 1.0 / (1.0 + (-2.0f64 * 0.15).exp())).abs() < 1e-12);
    }
}
