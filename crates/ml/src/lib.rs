//! A small, dependency-light ML library for the disposable-domain
//! classifier.
//!
//! The paper (§V-C) selects a **LAD tree** — an alternating decision tree
//! learned with LogitBoost — as the disposable-zone classifier `C`, after
//! model selection against Naive Bayes, nearest neighbours, neural
//! networks and logistic regression, evaluated with standard 10-fold cross
//! validation and an ROC curve (Fig. 12). This crate implements that
//! toolchain:
//!
//! * [`LadTree`] — LogitBoost over weighted regression stumps (the LAD
//!   learning rule).
//! * [`Cart`], [`GaussianNb`], [`KnnClassifier`], [`LogisticRegression`] —
//!   the model-selection baselines.
//! * [`Dataset`], [`stratified_kfold`], [`cross_validate`], [`RocCurve`],
//!   [`ConfusionMatrix`] — the evaluation protocol.
//!
//! # Examples
//!
//! ```
//! use dnsnoise_ml::{Dataset, LadTree, Learner};
//!
//! // A toy 1-D problem: positive iff x > 0.
//! let rows: Vec<Vec<f64>> = (-50..50).map(|i| vec![f64::from(i)]).collect();
//! let labels: Vec<bool> = (-50..50).map(|i| i > 0).collect();
//! let data = Dataset::new(rows, labels)?;
//! let model = LadTree::default().fit(&data);
//! assert!(model.score(&[10.0]) > 0.9);
//! assert!(model.score(&[-10.0]) < 0.1);
//! # Ok::<(), dnsnoise_ml::DatasetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cart;
mod data;
mod eval;
mod knn;
mod ladtree;
mod logistic;
mod naive_bayes;
pub mod persist;
mod stump;

pub use cart::Cart;
pub use data::{Dataset, DatasetError};
pub use eval::{cross_validate, stratified_kfold, ConfusionMatrix, CvOutcome, RocCurve};
pub use knn::KnnClassifier;
pub use ladtree::{LadTree, LadTreeModel};
pub use logistic::LogisticRegression;
pub use naive_bayes::GaussianNb;
pub use persist::{model_from_text, model_to_text, PersistError};
pub use stump::RegressionStump;

/// A trained binary classifier: scores are calibrated-ish probabilities of
/// the positive ("disposable") class in `[0, 1]`.
pub trait Model: Send + Sync {
    /// The positive-class probability for a feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x` has the wrong dimensionality.
    fn score(&self, x: &[f64]) -> f64;

    /// Hard decision at a threshold.
    fn classify(&self, x: &[f64], threshold: f64) -> bool {
        self.score(x) >= threshold
    }
}

/// A learning algorithm that produces a [`Model`] from a [`Dataset`].
pub trait Learner {
    /// Trains on the dataset.
    fn fit(&self, data: &Dataset) -> Box<dyn Model>;

    /// A short display name ("LADTree", "NaiveBayes", …).
    fn name(&self) -> &'static str;
}
