//! Weighted least-squares regression stumps — the base learner of the LAD
//! tree's LogitBoost procedure.

use serde::{Deserialize, Serialize};

/// A one-split regression tree: `if x[feature] <= threshold { left } else
/// { right }`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionStump {
    /// The split feature index.
    pub feature: usize,
    /// The split threshold.
    pub threshold: f64,
    /// Prediction for `x[feature] <= threshold`.
    pub left: f64,
    /// Prediction for `x[feature] > threshold`.
    pub right: f64,
}

impl RegressionStump {
    /// Fits the stump minimising weighted squared error of targets `z`
    /// with weights `w` over rows `x`.
    ///
    /// Returns a constant stump (weighted mean on both sides) when no
    /// split improves on the constant fit — e.g. all-identical features.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or have mismatched lengths.
    pub fn fit(x: &[&[f64]], z: &[f64], w: &[f64]) -> RegressionStump {
        assert!(!x.is_empty(), "cannot fit a stump on no rows");
        assert_eq!(x.len(), z.len(), "targets must match rows");
        assert_eq!(x.len(), w.len(), "weights must match rows");
        let n = x.len();
        let dim = x[0].len();

        let w_total: f64 = w.iter().sum();
        let wz_total: f64 = z.iter().zip(w).map(|(zi, wi)| zi * wi).sum();
        let mean = if w_total > 0.0 { wz_total / w_total } else { 0.0 };

        let mut best: Option<(f64, RegressionStump)> = None;
        let mut order: Vec<usize> = (0..n).collect();

        #[allow(clippy::needless_range_loop)] // j indexes every row's j-th feature
        for j in 0..dim {
            order
                .sort_unstable_by(|&a, &b| x[a][j].partial_cmp(&x[b][j]).expect("finite features"));
            // Prefix sums over the sorted order let every split be scored
            // in O(1).
            let mut wl = 0.0;
            let mut wzl = 0.0;
            for k in 0..n - 1 {
                let i = order[k];
                wl += w[i];
                wzl += w[i] * z[i];
                // Only split between distinct feature values.
                if x[order[k]][j] == x[order[k + 1]][j] {
                    continue;
                }
                let wr = w_total - wl;
                if wl <= 0.0 || wr <= 0.0 {
                    continue;
                }
                let wzr = wz_total - wzl;
                let left = wzl / wl;
                let right = wzr / wr;
                // Weighted SSE reduction relative to the constant fit is
                // wl*left² + wr*right² − w_total*mean² (larger is better).
                let gain = wl * left * left + wr * right * right - w_total * mean * mean;
                let threshold = (x[order[k]][j] + x[order[k + 1]][j]) / 2.0;
                if best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, RegressionStump { feature: j, threshold, left, right }));
                }
            }
        }

        match best {
            Some((gain, stump)) if gain > 1e-12 => stump,
            _ => RegressionStump { feature: 0, threshold: f64::INFINITY, left: mean, right: mean },
        }
    }

    /// Evaluates the stump on a feature vector. A vector shorter than
    /// the split feature index reads the missing feature as negative
    /// infinity and takes the left branch.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if x.get(self.feature).copied().unwrap_or(f64::NEG_INFINITY) <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(v: &[Vec<f64>]) -> Vec<&[f64]> {
        v.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn fits_perfect_step() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let z = [-1.0, -1.0, 1.0, 1.0];
        let w = [1.0; 4];
        let stump = RegressionStump::fit(&rows(&data), &z, &w);
        assert_eq!(stump.feature, 0);
        assert!((1.0..2.0).contains(&stump.threshold));
        assert_eq!(stump.predict(&[0.5]), -1.0);
        assert_eq!(stump.predict(&[2.5]), 1.0);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise; feature 1 separates.
        let data = vec![vec![5.0, 0.0], vec![1.0, 0.1], vec![4.0, 10.0], vec![2.0, 10.1]];
        let z = [-1.0, -1.0, 1.0, 1.0];
        let w = [1.0; 4];
        let stump = RegressionStump::fit(&rows(&data), &z, &w);
        assert_eq!(stump.feature, 1);
    }

    #[test]
    fn respects_weights() {
        // Two conflicting points at the same x; the heavier one wins the
        // side's mean.
        let data = vec![vec![0.0], vec![0.0], vec![1.0]];
        let z = [1.0, -1.0, 0.0];
        let w = [9.0, 1.0, 1.0];
        let stump = RegressionStump::fit(&rows(&data), &z, &w);
        // Left side mean = (9*1 - 1*1)/10 = 0.8.
        assert!((stump.predict(&[0.0]) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn constant_features_give_constant_stump() {
        let data = vec![vec![7.0], vec![7.0], vec![7.0]];
        let z = [1.0, 2.0, 3.0];
        let w = [1.0; 3];
        let stump = RegressionStump::fit(&rows(&data), &z, &w);
        assert_eq!(stump.predict(&[7.0]), 2.0);
        assert_eq!(stump.predict(&[100.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_input_panics() {
        let _ = RegressionStump::fit(&[], &[], &[]);
    }
}
