//! Property-based tests for the domain name tree and feature invariants.

use std::collections::HashSet;

use dnsnoise_core::{DomainTree, GroupFeatures};
use dnsnoise_dns::{Label, Name, SuffixList};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = Label> {
    proptest::string::string_regex("[a-z0-9]{1,12}").unwrap().prop_map(|s| Label::new(&s).unwrap())
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 2..6).prop_map(Name::from_labels)
}

fn arb_observation() -> impl Strategy<Value = (Name, f64, u32)> {
    (arb_name(), 0.0f64..=1.0, 0u32..20)
}

proptest! {
    /// Every observed name becomes a black node; groups under any zone
    /// partition the black descendants; members sit at the claimed depth.
    #[test]
    fn groups_partition_black_descendants(obs in proptest::collection::vec(arb_observation(), 1..60)) {
        let mut tree = DomainTree::new();
        for (name, dhr, misses) in &obs {
            tree.observe(name, *dhr, *misses);
        }
        let names: HashSet<&Name> = obs.iter().map(|(n, _, _)| n).collect();
        for name in &names {
            prop_assert!(tree.is_black(name));
        }
        // Check the partition property under every 2LD appearing in the data.
        let zones: HashSet<Name> = names.iter().filter_map(|n| n.nld(2)).collect();
        for zone in zones {
            let Some(groups) = tree.groups_under(&zone) else { continue };
            let mut seen = HashSet::new();
            for (&depth, group) in &groups.groups {
                prop_assert!(depth > zone.depth());
                for &member in &group.members {
                    prop_assert!(seen.insert(member), "node in two groups");
                    let member_name = tree.name_of(member);
                    prop_assert_eq!(member_name.depth(), depth);
                    prop_assert!(member_name.is_subdomain_of(&zone));
                }
            }
            // Every black strict descendant of the zone is in some group.
            let descendants = names
                .iter()
                .filter(|n| n.is_subdomain_of(&zone) && ***n != zone)
                .count();
            prop_assert_eq!(seen.len(), descendants);
        }
    }

    /// Decoloring strictly shrinks group membership and never panics.
    #[test]
    fn decoloring_monotone(obs in proptest::collection::vec(arb_observation(), 2..40)) {
        let mut tree = DomainTree::new();
        for (name, dhr, misses) in &obs {
            tree.observe(name, *dhr, *misses);
        }
        let before = tree.black_count();
        let target = &obs[0].0;
        let id = tree.node_of(target).expect("observed name exists");
        tree.decolor(id);
        prop_assert_eq!(tree.black_count(), before - 1);
        prop_assert!(!tree.is_black(target));
        // Second decolor is a no-op on the count.
        tree.decolor(id);
        prop_assert_eq!(tree.black_count(), before - 1);
    }

    /// Feature vectors are finite, bounded where bounded, and consistent
    /// with their group.
    #[test]
    fn features_are_well_formed(obs in proptest::collection::vec(arb_observation(), 1..60)) {
        let mut tree = DomainTree::new();
        for (name, dhr, misses) in &obs {
            tree.observe(name, *dhr, *misses);
        }
        let zones: HashSet<Name> = obs.iter().filter_map(|(n, _, _)| n.nld(2)).collect();
        for zone in zones {
            let Some(groups) = tree.groups_under(&zone) else { continue };
            for group in groups.groups.values() {
                let f = GroupFeatures::compute(&tree, group);
                let v = f.to_vec();
                prop_assert!(v.iter().all(|x| x.is_finite()));
                prop_assert!(f.cardinality >= 1.0);
                prop_assert!(f.cardinality <= group.members.len() as f64);
                prop_assert!((0.0..=8.0).contains(&f.entropy_max));
                prop_assert!(f.entropy_min <= f.entropy_mean);
                prop_assert!(f.entropy_mean <= f.entropy_max);
                prop_assert!((0.0..=1.0).contains(&f.chr_median));
                prop_assert!((0.0..=1.0).contains(&f.chr_zero_fraction));
                prop_assert!(f.entropy_variance >= 0.0);
            }
        }
    }

    /// Registered-domain enumeration returns nodes that really are
    /// registered domains, exactly once each.
    #[test]
    fn registered_domains_are_unique_and_valid(obs in proptest::collection::vec(arb_observation(), 1..60)) {
        let mut tree = DomainTree::new();
        for (name, dhr, misses) in &obs {
            tree.observe(name, *dhr, *misses);
        }
        let psl = SuffixList::builtin();
        let found = tree.registered_domains(&psl);
        let mut seen = HashSet::new();
        for (_, name) in &found {
            prop_assert!(seen.insert(name.clone()), "duplicate registered domain {name}");
            prop_assert_eq!(psl.registered_domain(name), Some(name.clone()));
        }
        // Every observed name that *has* a registered domain is covered by
        // exactly one of them. (A name like `a.ck` under the `*.ck`
        // wildcard rule is itself a public suffix and is legitimately
        // uncovered — Algorithm 1 never starts inside the suffix area.)
        for (name, _, _) in &obs {
            let covering = found.iter().filter(|(_, z)| name.is_subdomain_of(z)).count();
            match psl.registered_domain(name) {
                Some(_) => prop_assert_eq!(covering, 1, "{} covered by {} registered domains", name, covering),
                None => prop_assert_eq!(covering, 0, "suffix {} should be uncovered", name),
            }
        }
    }
}
