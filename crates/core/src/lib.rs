//! The paper's primary contribution: the **disposable zone miner**.
//!
//! Given one day of passive-DNS observations (per-record query/miss
//! statistics from `dnsnoise-resolver`), this crate:
//!
//! 1. builds the **domain name tree** of §V-A1 ([`DomainTree`]) with black
//!    nodes for every name that owned a resource record that day;
//! 2. extracts, for every inspected zone and depth, the two feature
//!    families of §V-A2 ([`GroupFeatures`]): six tree-structure features
//!    (label-set cardinality and Shannon-entropy statistics) and two
//!    cache-hit-rate features (median CHR, zero-CHR fraction);
//! 3. trains the LAD-tree classifier `C` on labeled zones
//!    ([`TrainingSetBuilder`]) exactly as §IV-B labels them (398
//!    disposable, 401 Alexa-style non-disposable);
//! 4. runs **Algorithm 1** ([`Miner`]): classify each depth-group under
//!    every effective 2LD, decolor groups classified disposable with
//!    confidence ≥ θ = 0.9, emit `(zone, depth)`, recurse into children;
//! 5. ranks and evaluates the findings against ground truth
//!    ([`MiningReport`]).
//!
//! # Examples
//!
//! ```
//! use dnsnoise_core::{DailyPipeline, MinerConfig};
//! use dnsnoise_workload::{Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.05), 11);
//! let mut pipeline = DailyPipeline::new(MinerConfig::default());
//! let report = pipeline.run_day(&scenario, 0);
//! assert!(report.found.len() > 0, "the miner finds disposable zones");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod features;
mod labeling;
mod miner;
mod pipeline;
mod report;
mod tree;

pub use campaign::{CampaignTracker, ZoneHistory};
pub use features::{GroupFeatures, FEATURE_COUNT, FEATURE_NAMES};
pub use labeling::{LabeledZones, TrainingSetBuilder};
pub use miner::{Finding, Miner, MinerConfig};
pub use pipeline::DailyPipeline;
pub use report::{MiningReport, ZoneRanking};
pub use tree::{DomainTree, GroupKey, ZoneGroups};
