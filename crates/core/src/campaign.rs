//! Multi-day campaign tracking: the operational layer over the daily
//! miner.
//!
//! The paper runs its miner over months of traffic ("over the period of
//! 11 months, we discovered 14,488 new disposable zones") and reports
//! campaign-level aggregates: distinct zones, distinct 2LDs, newly-found
//! zones per day. [`CampaignTracker`] accumulates daily
//! [`MiningReport`]s into exactly those aggregates, with a stability-aware
//! ranking (zones confirmed on many days outrank one-day wonders of equal
//! confidence).

use std::collections::HashMap;

use dnsnoise_dns::{Name, SuffixList};
use serde::{Deserialize, Serialize};

use crate::report::MiningReport;

/// Accumulated state for one discovered `(zone, depth)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneHistory {
    /// The zone.
    pub zone: Name,
    /// The disposable group depth.
    pub depth: usize,
    /// First day the miner emitted it.
    pub first_seen: u64,
    /// Most recent day it was emitted.
    pub last_seen: u64,
    /// Number of days it was emitted.
    pub days_seen: u32,
    /// Highest confidence observed.
    pub peak_confidence: f64,
    /// Total decolored names across all sightings.
    pub total_names: u64,
}

impl ZoneHistory {
    /// The ranking score: confirmation days weighted by peak confidence
    /// and (log-)volume. Monotone in every component.
    pub fn score(&self) -> f64 {
        f64::from(self.days_seen) * self.peak_confidence * (1.0 + (self.total_names as f64).ln_1p())
    }
}

/// Aggregates daily mining reports into a campaign view.
///
/// # Examples
///
/// ```
/// use dnsnoise_core::{CampaignTracker, DailyPipeline, MinerConfig};
/// use dnsnoise_workload::{Scenario, ScenarioConfig};
///
/// let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.05), 3);
/// let mut pipeline = DailyPipeline::new(MinerConfig::default());
/// let mut campaign = CampaignTracker::new();
/// for day in 0..2 {
///     campaign.ingest(&pipeline.run_day(&scenario, day));
/// }
/// assert!(campaign.zone_count() > 0);
/// assert!(campaign.new_on_day(0) >= campaign.new_on_day(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CampaignTracker {
    zones: HashMap<(Name, usize), ZoneHistory>,
    new_per_day: HashMap<u64, u32>,
    days_ingested: u32,
}

impl CampaignTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CampaignTracker::default()
    }

    /// Folds one day's report into the campaign.
    pub fn ingest(&mut self, report: &MiningReport) {
        self.days_ingested += 1;
        for finding in &report.found {
            let key = (finding.zone.clone(), finding.depth);
            match self.zones.get_mut(&key) {
                Some(history) => {
                    history.last_seen = report.day;
                    history.days_seen += 1;
                    history.peak_confidence = history.peak_confidence.max(finding.confidence);
                    history.total_names += finding.members as u64;
                }
                None => {
                    *self.new_per_day.entry(report.day).or_insert(0) += 1;
                    self.zones.insert(
                        key,
                        ZoneHistory {
                            zone: finding.zone.clone(),
                            depth: finding.depth,
                            first_seen: report.day,
                            last_seen: report.day,
                            days_seen: 1,
                            peak_confidence: finding.confidence,
                            total_names: finding.members as u64,
                        },
                    );
                }
            }
        }
    }

    /// Distinct `(zone, depth)` pairs discovered so far.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Distinct effective 2LDs among discovered zones (the Fig. 11
    /// "12,397 unique 2LDs" statistic).
    pub fn unique_2lds(&self, psl: &SuffixList) -> usize {
        self.zones
            .keys()
            .filter_map(|(zone, _)| psl.registered_domain(zone))
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Zones first discovered on `day`.
    pub fn new_on_day(&self, day: u64) -> u32 {
        self.new_per_day.get(&day).copied().unwrap_or(0)
    }

    /// Number of days ingested.
    pub fn days_ingested(&self) -> u32 {
        self.days_ingested
    }

    /// The history of one zone, if discovered.
    pub fn history(&self, zone: &Name, depth: usize) -> Option<&ZoneHistory> {
        self.zones.get(&(zone.clone(), depth))
    }

    /// All histories ranked by [`ZoneHistory::score`], descending.
    pub fn ranking(&self) -> Vec<&ZoneHistory> {
        let mut all: Vec<&ZoneHistory> = self.zones.values().collect();
        all.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .expect("scores are finite")
                .then_with(|| a.zone.cmp(&b.zone))
                .then_with(|| a.depth.cmp(&b.depth))
        });
        all
    }

    /// Zones seen on at least `min_days` distinct days — the stable core
    /// an operator would act on (e.g. feed to the §VI-C wildcard filter).
    /// Ordered by `(zone, depth)` so exports built from it are
    /// reproducible run to run.
    pub fn stable_zones(&self, min_days: u32) -> impl Iterator<Item = &ZoneHistory> {
        let mut picked: Vec<&ZoneHistory> =
            self.zones.values().filter(|h| h.days_seen >= min_days).collect();
        picked.sort_by(|a, b| a.zone.cmp(&b.zone).then_with(|| a.depth.cmp(&b.depth)));
        picked.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::Finding;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn report(day: u64, findings: Vec<Finding>) -> MiningReport {
        MiningReport { day, found: findings, ..MiningReport::default() }
    }

    fn finding(zone: &str, depth: usize, confidence: f64, members: usize) -> Finding {
        Finding { zone: n(zone), depth, confidence, members }
    }

    #[test]
    fn tracks_first_and_last_seen() {
        let mut c = CampaignTracker::new();
        c.ingest(&report(0, vec![finding("avqs.mcafee.com", 4, 0.95, 100)]));
        c.ingest(&report(3, vec![finding("avqs.mcafee.com", 4, 0.99, 150)]));
        let h = c.history(&n("avqs.mcafee.com"), 4).unwrap();
        assert_eq!(h.first_seen, 0);
        assert_eq!(h.last_seen, 3);
        assert_eq!(h.days_seen, 2);
        assert_eq!(h.peak_confidence, 0.99);
        assert_eq!(h.total_names, 250);
    }

    #[test]
    fn new_per_day_counts_only_first_sightings() {
        let mut c = CampaignTracker::new();
        c.ingest(&report(0, vec![finding("a.x.com", 3, 0.9, 20), finding("b.y.com", 3, 0.9, 20)]));
        c.ingest(&report(1, vec![finding("a.x.com", 3, 0.9, 20), finding("c.z.com", 3, 0.9, 20)]));
        assert_eq!(c.new_on_day(0), 2);
        assert_eq!(c.new_on_day(1), 1);
        assert_eq!(c.zone_count(), 3);
    }

    #[test]
    fn same_zone_different_depth_is_distinct() {
        let mut c = CampaignTracker::new();
        c.ingest(&report(
            0,
            vec![finding("exp.l.google.com", 4, 0.9, 50), finding("exp.l.google.com", 5, 0.9, 10)],
        ));
        assert_eq!(c.zone_count(), 2);
    }

    #[test]
    fn ranking_prefers_stability() {
        let mut c = CampaignTracker::new();
        // Same confidence and volume, but one zone confirmed twice.
        c.ingest(&report(
            0,
            vec![finding("stable.x.com", 3, 0.95, 50), finding("flash.y.com", 3, 0.95, 50)],
        ));
        c.ingest(&report(1, vec![finding("stable.x.com", 3, 0.95, 50)]));
        let ranking = c.ranking();
        assert_eq!(ranking[0].zone, n("stable.x.com"));
    }

    #[test]
    fn stable_zone_filter() {
        let mut c = CampaignTracker::new();
        c.ingest(&report(0, vec![finding("a.x.com", 3, 0.9, 10), finding("b.y.com", 3, 0.9, 10)]));
        c.ingest(&report(1, vec![finding("a.x.com", 3, 0.9, 10)]));
        let stable: Vec<_> = c.stable_zones(2).collect();
        assert_eq!(stable.len(), 1);
        assert_eq!(stable[0].zone, n("a.x.com"));
    }

    #[test]
    fn stable_zones_are_ordered_by_zone_then_depth() {
        // Regression: `stable_zones` used to expose raw HashMap order.
        let mut c = CampaignTracker::new();
        for day in 0..2 {
            c.ingest(&report(
                day,
                vec![
                    finding("z.last.com", 3, 0.9, 10),
                    finding("a.first.com", 5, 0.9, 10),
                    finding("a.first.com", 3, 0.9, 10),
                    finding("m.mid.com", 4, 0.9, 10),
                ],
            ));
        }
        let order: Vec<(String, usize)> =
            c.stable_zones(2).map(|h| (h.zone.to_string(), h.depth)).collect();
        assert_eq!(
            order,
            vec![
                ("a.first.com".to_string(), 3),
                ("a.first.com".to_string(), 5),
                ("m.mid.com".to_string(), 4),
                ("z.last.com".to_string(), 3),
            ]
        );
    }

    #[test]
    fn ranking_breaks_score_ties_by_zone_then_depth() {
        // Two depths of the same zone with identical scores: the ranking
        // must still be a total order, not hash order.
        let mut c = CampaignTracker::new();
        c.ingest(&report(
            0,
            vec![finding("exp.l.google.com", 5, 0.9, 50), finding("exp.l.google.com", 4, 0.9, 50)],
        ));
        let ranking = c.ranking();
        assert_eq!(ranking[0].depth, 4);
        assert_eq!(ranking[1].depth, 5);
    }

    #[test]
    fn unique_2lds_deduplicate() {
        let mut c = CampaignTracker::new();
        c.ingest(&report(
            0,
            vec![
                finding("avqs.mcafee.com", 4, 0.9, 10),
                finding("gti.mcafee.com", 4, 0.9, 10),
                finding("zen.spamhaus.org", 7, 0.9, 10),
            ],
        ));
        assert_eq!(c.unique_2lds(&SuffixList::builtin()), 2);
    }
}
