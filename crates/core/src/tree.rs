//! The domain name tree of §V-A1.

use std::collections::{BTreeMap, BTreeSet};

use dnsnoise_dns::{Label, Name, SuffixList};
use dnsnoise_resolver::RrDayStats;

/// Identifies one depth-group `G_k` under an inspected zone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// The inspected zone.
    pub zone: Name,
    /// The absolute label depth of the group's members.
    pub depth: usize,
}

/// The black descendants of a zone, grouped by absolute depth, together
/// with the label set `L_k` ("the labels next to the zone under
/// inspection", §V-A1).
#[derive(Debug, Clone, Default)]
pub struct ZoneGroups {
    /// `depth → (member node ids, adjacent-label set)`.
    pub groups: BTreeMap<usize, GroupMembers>,
}

/// One `G_k`: the member nodes plus their `L_k` labels.
#[derive(Debug, Clone, Default)]
pub struct GroupMembers {
    /// Arena ids of the black member nodes.
    pub members: Vec<usize>,
    /// The distinct labels adjacent to the inspected zone on the members'
    /// paths (the set `L_k`).
    pub adjacent_labels: Vec<Label>,
}

#[derive(Debug)]
struct TreeNode {
    label: Option<Label>,
    // Ordered so every traversal (registered-domain walk, group
    // collection, name reconstruction) visits children in label order —
    // member vectors and discovery order stay deterministic regardless
    // of arena insertion order.
    children: BTreeMap<Label, usize>,
    /// A black node owned at least one RR in the observation window.
    black: bool,
    /// Per-RR `(domain hit rate, miss count)` pairs for RRs owned by this
    /// name — the inputs to the group CHR distribution.
    rr_chr: Vec<(f64, u32)>,
}

/// The daily domain name tree: root → effective TLDs → … (§V-A1, Fig. 8).
///
/// Nodes are held in an arena indexed by `usize`; node 0 is the root.
///
/// # Examples
///
/// ```
/// use dnsnoise_core::DomainTree;
///
/// let mut tree = DomainTree::new();
/// let a: dnsnoise_dns::Name = "x1.tracker.example.com".parse()?;
/// let b: dnsnoise_dns::Name = "x2.tracker.example.com".parse()?;
/// tree.observe(&a, 0.0, 1);
/// tree.observe(&b, 0.0, 1);
/// let zone: dnsnoise_dns::Name = "tracker.example.com".parse()?;
/// let groups = tree.groups_under(&zone).expect("zone exists");
/// assert_eq!(groups.groups[&4].members.len(), 2);
/// assert_eq!(groups.groups[&4].adjacent_labels.len(), 2);
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug)]
pub struct DomainTree {
    arena: Vec<TreeNode>,
}

impl Default for DomainTree {
    fn default() -> Self {
        DomainTree::new()
    }
}

impl DomainTree {
    /// Creates an empty tree (just the root).
    pub fn new() -> Self {
        DomainTree {
            arena: vec![TreeNode {
                label: None,
                children: BTreeMap::new(),
                black: false,
                rr_chr: Vec::new(),
            }],
        }
    }

    /// Builds a tree from a day of per-RR statistics.
    pub fn from_day_stats(stats: &RrDayStats) -> Self {
        let mut tree = DomainTree::new();
        for (key, stat) in stats.iter() {
            tree.observe(&key.name, stat.dhr(), stat.misses);
        }
        tree
    }

    /// Records one resource record owned by `name` with the given domain
    /// hit rate and daily miss count. The name's node (and its ancestors'
    /// nodes) are created as needed; the node turns black.
    pub fn observe(&mut self, name: &Name, dhr: f64, misses: u32) {
        let mut node = 0usize;
        // Walk rightmost label (TLD) first.
        for label in name.labels().iter().rev() {
            node = match self.arena[node].children.get(label) {
                Some(&child) => child,
                None => {
                    let id = self.arena.len();
                    self.arena.push(TreeNode {
                        label: Some(label.clone()),
                        children: BTreeMap::new(),
                        black: false,
                        rr_chr: Vec::new(),
                    });
                    self.arena[node].children.insert(label.clone(), id);
                    id
                }
            };
        }
        let n = &mut self.arena[node];
        n.black = true;
        n.rr_chr.push((dhr, misses));
    }

    /// Total nodes in the arena (including white interior nodes and root).
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of black nodes.
    pub fn black_count(&self) -> usize {
        self.arena.iter().filter(|n| n.black).count()
    }

    /// Finds the node id for a name, if present.
    pub fn node_of(&self, name: &Name) -> Option<usize> {
        let mut node = 0usize;
        for label in name.labels().iter().rev() {
            node = *self.arena[node].children.get(label)?;
        }
        Some(node)
    }

    /// Whether the node for `name` exists and is black.
    pub fn is_black(&self, name: &Name) -> bool {
        self.node_of(name).is_some_and(|id| self.arena[id].black)
    }

    /// The `(dhr, misses)` pairs of RRs owned by node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_chr(&self, id: usize) -> &[(f64, u32)] {
        &self.arena[id].rr_chr
    }

    /// Turns the node white (Algorithm 1's decoloring, lines 9–11).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn decolor(&mut self, id: usize) {
        self.arena[id].black = false;
    }

    /// Child node ids of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn children_of(&self, id: usize) -> impl Iterator<Item = usize> + '_ {
        self.arena[id].children.values().copied()
    }

    /// The label of node `id` (`None` for the root).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn label_of(&self, id: usize) -> Option<&Label> {
        self.arena[id].label.as_ref()
    }

    /// Reconstructs the full name of a node by id — `O(depth × fanout)`,
    /// intended for reporting, not hot paths.
    pub fn name_of(&self, id: usize) -> Name {
        fn walk(tree: &DomainTree, current: usize, target: usize, path: &mut Vec<Label>) -> bool {
            if current == target {
                return true;
            }
            for (label, &child) in &tree.arena[current].children {
                path.push(label.clone());
                if walk(tree, child, target, path) {
                    return true;
                }
                path.pop();
            }
            false
        }
        let mut path = Vec::new();
        if walk(self, 0, id, &mut path) {
            // path is rightmost-first; Name wants leftmost-first.
            path.reverse();
            Name::from_labels(path)
        } else {
            Name::root()
        }
    }

    /// Collects the black descendants of `zone`, grouped by absolute depth
    /// and annotated with the adjacent-label sets (§V-A1). Returns `None`
    /// if the zone has no node in the tree.
    pub fn groups_under(&self, zone: &Name) -> Option<ZoneGroups> {
        let zone_id = self.node_of(zone)?;
        Some(self.groups_under_id(zone_id, zone.depth()))
    }

    /// [`DomainTree::groups_under`] by node id (`zone_depth` is the
    /// zone's absolute depth).
    pub fn groups_under_id(&self, zone_id: usize, zone_depth: usize) -> ZoneGroups {
        let mut groups: BTreeMap<usize, (Vec<usize>, BTreeSet<Label>)> = BTreeMap::new();
        for (adjacent_label, &child) in &self.arena[zone_id].children {
            self.collect(child, zone_depth + 1, adjacent_label, &mut groups);
        }
        ZoneGroups {
            groups: groups
                .into_iter()
                .map(|(depth, (members, labels))| {
                    // BTreeSet iterates in label order, so `L_k` is sorted.
                    let adjacent_labels: Vec<Label> = labels.into_iter().collect();
                    (depth, GroupMembers { members, adjacent_labels })
                })
                .collect(),
        }
    }

    fn collect(
        &self,
        id: usize,
        depth: usize,
        adjacent: &Label,
        groups: &mut BTreeMap<usize, (Vec<usize>, BTreeSet<Label>)>,
    ) {
        let node = &self.arena[id];
        if node.black {
            let slot = groups.entry(depth).or_default();
            slot.0.push(id);
            slot.1.insert(adjacent.clone());
        }
        for &child in node.children.values() {
            self.collect(child, depth + 1, adjacent, groups);
        }
    }

    /// Node ids of every *registered domain* (effective 2LD) present in
    /// the tree — the starting zones of Algorithm 1. A node qualifies when
    /// its parent path is a public suffix and it is not one itself.
    pub fn registered_domains(&self, psl: &SuffixList) -> Vec<(usize, Name)> {
        let mut out = Vec::new();
        let mut path: Vec<Label> = Vec::new();
        self.walk_registered(0, psl, &mut path, &mut out);
        out
    }

    fn walk_registered(
        &self,
        id: usize,
        psl: &SuffixList,
        path: &mut Vec<Label>,
        out: &mut Vec<(usize, Name)>,
    ) {
        for (label, &child) in &self.arena[id].children {
            path.push(label.clone());
            let name = {
                let mut labels = path.clone();
                labels.reverse();
                Name::from_labels(labels)
            };
            if psl.is_suffix(&name) {
                // Still inside the public-suffix area: keep descending.
                self.walk_registered(child, psl, path, out);
            } else {
                // First non-suffix level: this is a registered domain.
                out.push((child, name));
            }
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn paper_example_tree() -> DomainTree {
        // The running example of §V-A1 / Fig. 8.
        let mut tree = DomainTree::new();
        for name in [
            "a.example.com",
            "i.1.a.example.com",
            "2.a.example.com",
            "3.a.example.com",
            "4.b.example.com",
            "c.example.com",
        ] {
            tree.observe(&n(name), 0.0, 1);
        }
        tree
    }

    #[test]
    fn paper_example_groups() {
        let tree = paper_example_tree();
        let groups = tree.groups_under(&n("example.com")).unwrap();
        // G3 = {a, c}, G4 = {2.a, 3.a, 4.b}, G5 = {i.1.a}.
        assert_eq!(groups.groups[&3].members.len(), 2);
        assert_eq!(groups.groups[&4].members.len(), 3);
        assert_eq!(groups.groups[&5].members.len(), 1);
        // L3 = {a, c}, L4 = {a, b}, L5 = {a}.
        let labels = |k: usize| -> Vec<String> {
            groups.groups[&k].adjacent_labels.iter().map(|l| l.to_string()).collect()
        };
        assert_eq!(labels(3), vec!["a", "c"]);
        assert_eq!(labels(4), vec!["a", "b"]);
        assert_eq!(labels(5), vec!["a"]);
    }

    #[test]
    fn interior_nodes_are_white() {
        let tree = paper_example_tree();
        // b.example.com and 1.a.example.com were never observed directly.
        assert!(!tree.is_black(&n("b.example.com")));
        assert!(!tree.is_black(&n("1.a.example.com")));
        assert!(tree.is_black(&n("a.example.com")));
        // White interior nodes are not group members.
        let groups = tree.groups_under(&n("example.com")).unwrap();
        let g3_names: Vec<Name> =
            groups.groups[&3].members.iter().map(|&id| tree.name_of(id)).collect();
        assert!(!g3_names.contains(&n("b.example.com")));
    }

    #[test]
    fn decoloring_removes_from_groups() {
        // Fig. 9: decoloring a.example.com and c.example.com removes G3.
        let mut tree = paper_example_tree();
        for name in ["a.example.com", "c.example.com"] {
            let id = tree.node_of(&n(name)).unwrap();
            tree.decolor(id);
        }
        let groups = tree.groups_under(&n("example.com")).unwrap();
        assert!(!groups.groups.contains_key(&3));
        assert_eq!(groups.groups[&4].members.len(), 3);
    }

    #[test]
    fn observe_accumulates_rr_chr() {
        let mut tree = DomainTree::new();
        tree.observe(&n("x.com"), 0.5, 2);
        tree.observe(&n("x.com"), 0.0, 1);
        let id = tree.node_of(&n("x.com")).unwrap();
        assert_eq!(tree.node_chr(id), &[(0.5, 2), (0.0, 1)]);
        assert_eq!(tree.black_count(), 1);
    }

    #[test]
    fn registered_domains_respect_psl() {
        let mut tree = DomainTree::new();
        tree.observe(&n("www.example.com"), 0.0, 1);
        tree.observe(&n("a.b.shop.co.uk"), 0.0, 1);
        tree.observe(&n("deep.host.dyndns.org"), 0.0, 1);
        let psl = SuffixList::builtin();
        let mut found: Vec<String> =
            tree.registered_domains(&psl).into_iter().map(|(_, name)| name.to_string()).collect();
        found.sort();
        assert_eq!(found, vec!["example.com", "host.dyndns.org", "shop.co.uk"]);
    }

    #[test]
    fn name_of_reconstructs() {
        let tree = paper_example_tree();
        let id = tree.node_of(&n("i.1.a.example.com")).unwrap();
        assert_eq!(tree.name_of(id), n("i.1.a.example.com"));
    }

    #[test]
    fn traversal_order_is_independent_of_observation_order() {
        // The tree keeps children ordered, so group member order and the
        // registered-domain walk are pure functions of the *name set*,
        // not of arena insertion order. This pins the ordering the
        // feature extractor and miner consume.
        let names = [
            "zz.a.example.com",
            "aa.a.example.com",
            "mm.b.example.com",
            "b.other.net",
            "a.other.net",
        ];
        let mut forward = DomainTree::new();
        for name in names {
            forward.observe(&n(name), 0.0, 1);
        }
        let mut backward = DomainTree::new();
        for name in names.iter().rev() {
            backward.observe(&n(name), 0.0, 1);
        }
        let psl = SuffixList::builtin();
        let walk = |t: &DomainTree| -> Vec<String> {
            t.registered_domains(&psl).into_iter().map(|(_, name)| name.to_string()).collect()
        };
        // Same sequence (not just same set) from both trees.
        assert_eq!(walk(&forward), walk(&backward));
        assert_eq!(walk(&forward), vec!["example.com", "other.net"]);
        let members = |t: &DomainTree| -> Vec<Name> {
            let groups = t.groups_under(&n("example.com")).unwrap();
            groups.groups[&4].members.iter().map(|&id| t.name_of(id)).collect()
        };
        assert_eq!(members(&forward), members(&backward));
        assert_eq!(
            members(&forward),
            vec![n("aa.a.example.com"), n("zz.a.example.com"), n("mm.b.example.com")]
        );
    }

    #[test]
    fn groups_under_missing_zone_is_none() {
        let tree = paper_example_tree();
        assert!(tree.groups_under(&n("absent.com")).is_none());
    }
}
