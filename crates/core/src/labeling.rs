//! Training-set construction (§IV-B): labeled disposable and
//! non-disposable zones.
//!
//! The paper manually labeled 398 disposable zones ("we took a
//! conservative approach to include zones with as few as 15 disposable
//! domains") and 401 2LD zones sampled from the Alexa top-1000 as
//! non-disposable. With a synthetic trace the labels come from ground
//! truth, but the selection protocol is kept identical: disposable zones
//! need ≥ 15 observed child names; non-disposable zones are the most
//! popular Alexa-like sites.

use dnsnoise_dns::Name;
use dnsnoise_ml::{Dataset, DatasetError};
use dnsnoise_workload::GroundTruth;
use serde::{Deserialize, Serialize};

use crate::features::GroupFeatures;
use crate::tree::DomainTree;

/// Selection parameters for the labeled training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingSetBuilder {
    /// Minimum observed child names for a disposable zone to be labeled
    /// (the paper's 15).
    pub min_disposable_names: usize,
    /// Cap on disposable training zones (the paper's 398).
    pub max_disposable_zones: usize,
    /// Cap on non-disposable training zones (the paper's 401).
    pub max_nondisposable_zones: usize,
}

impl Default for TrainingSetBuilder {
    fn default() -> Self {
        TrainingSetBuilder {
            min_disposable_names: 15,
            max_disposable_zones: 398,
            max_nondisposable_zones: 401,
        }
    }
}

/// The labeled zone rows: features, labels, and the `(zone, depth)` each
/// row came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledZones {
    /// Feature rows.
    pub rows: Vec<Vec<f64>>,
    /// `true` = disposable.
    pub labels: Vec<bool>,
    /// Row provenance.
    pub zones: Vec<(Name, usize)>,
}

impl LabeledZones {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no rows were selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Count of disposable rows.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Converts to an ML dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if the set is empty (no zone met the selection
    /// thresholds).
    pub fn dataset(&self) -> Result<Dataset, DatasetError> {
        Dataset::new(self.rows.clone(), self.labels.clone())
    }
}

impl TrainingSetBuilder {
    /// Builds the labeled set from a day's tree and the scenario ground
    /// truth.
    pub fn build(&self, tree: &DomainTree, gt: &GroundTruth) -> LabeledZones {
        let mut out = LabeledZones { rows: Vec::new(), labels: Vec::new(), zones: Vec::new() };

        // Disposable class: the zone's machine-generated depth group.
        let mut pos = 0usize;
        for zone in gt.disposable_zones() {
            if pos >= self.max_disposable_zones {
                break;
            }
            let Some(depth) = zone.child_depth else { continue };
            let Some(groups) = tree.groups_under(&zone.apex) else { continue };
            let Some(group) = groups.groups.get(&depth) else { continue };
            if group.members.len() < self.min_disposable_names {
                continue;
            }
            out.rows.push(GroupFeatures::compute(tree, group).to_vec());
            out.labels.push(true);
            out.zones.push((zone.apex.clone(), depth));
            pos += 1;
        }

        // Non-disposable class: the largest depth group of each known
        // benign zone, most-observed zones first (the Alexa-like sample).
        let mut candidates: Vec<(usize, Name, usize, Vec<f64>)> = Vec::new();
        for zone in gt.nondisposable_zones() {
            let Some(groups) = tree.groups_under(&zone.apex) else { continue };
            let Some((depth, group)) = groups.groups.iter().max_by_key(|(_, g)| g.members.len())
            else {
                continue;
            };
            if group.members.is_empty() {
                continue;
            }
            candidates.push((
                group.members.len(),
                zone.apex.clone(),
                *depth,
                GroupFeatures::compute(tree, group).to_vec(),
            ));
        }
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for (_, apex, depth, row) in candidates.into_iter().take(self.max_nondisposable_zones) {
            out.rows.push(row);
            out.labels.push(false);
            out.zones.push((apex, depth));
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_workload::{Scenario, ScenarioConfig};

    fn day_tree(scale: f64, seed: u64) -> (DomainTree, GroundTruth) {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(scale), seed);
        let trace = scenario.generate_day(0);
        let mut sim = dnsnoise_resolver::ResolverSim::new(dnsnoise_resolver::SimConfig::default());
        let report = sim.day(&trace).ground_truth(scenario.ground_truth()).run();
        (DomainTree::from_day_stats(&report.rr_stats), scenario.ground_truth().clone())
    }

    #[test]
    fn builds_both_classes() {
        let (tree, gt) = day_tree(0.1, 5);
        // At 1/10 experiment scale most tracker zones see < 15 names/day,
        // so use a proportionally smaller floor.
        let labeled =
            TrainingSetBuilder { min_disposable_names: 4, ..Default::default() }.build(&tree, &gt);
        assert!(labeled.positives() > 10, "disposable rows: {}", labeled.positives());
        assert!(
            labeled.len() - labeled.positives() > 50,
            "non-disposable rows: {}",
            labeled.len() - labeled.positives()
        );
        assert!(labeled.dataset().is_ok());
    }

    #[test]
    fn min_names_threshold_filters_small_zones() {
        let (tree, gt) = day_tree(0.1, 5);
        let strict = TrainingSetBuilder { min_disposable_names: 1_000_000, ..Default::default() };
        let labeled = strict.build(&tree, &gt);
        assert_eq!(labeled.positives(), 0);
    }

    #[test]
    fn caps_are_respected() {
        let (tree, gt) = day_tree(0.1, 5);
        let capped = TrainingSetBuilder {
            min_disposable_names: 5,
            max_disposable_zones: 3,
            max_nondisposable_zones: 7,
        };
        let labeled = capped.build(&tree, &gt);
        assert!(labeled.positives() <= 3);
        assert!(labeled.len() - labeled.positives() <= 7);
    }

    #[test]
    fn feature_separation_matches_figure_seven() {
        // Fig. 7: ~90% of disposable CHR weight is at zero; non-disposable
        // zones have a much better distribution.
        let (tree, gt) = day_tree(0.15, 5);
        let labeled = TrainingSetBuilder::default().build(&tree, &gt);
        let zero_frac_idx = 7; // chr_zero_fraction
        let mut disp = Vec::new();
        let mut non = Vec::new();
        for (row, &label) in labeled.rows.iter().zip(&labeled.labels) {
            if label {
                disp.push(row[zero_frac_idx]);
            } else {
                non.push(row[zero_frac_idx]);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&disp) > 0.75, "disposable zero-CHR fraction {}", mean(&disp));
        assert!(
            mean(&non) < mean(&disp),
            "non-disposable {} vs disposable {}",
            mean(&non),
            mean(&disp)
        );
    }
}
