//! The statistical feature families of §V-A2.

use dnsnoise_dns::Label;
use dnsnoise_resolver::ChrDistribution;
use serde::{Deserialize, Serialize};

use crate::tree::{DomainTree, GroupMembers};

/// Number of features per group vector.
pub const FEATURE_COUNT: usize = 8;

/// Display names for the eight features, in vector order.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "label_set_cardinality",
    "entropy_max",
    "entropy_min",
    "entropy_mean",
    "entropy_median",
    "entropy_variance",
    "chr_median",
    "chr_zero_fraction",
];

/// The feature vector of one depth-group `G_k`: six tree-structure
/// features over the label set `L_k` and two cache-hit-rate features over
/// the group's RRs (§V-A2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupFeatures {
    /// `|L_k|` — how many distinct labels sit next to the inspected zone.
    pub cardinality: f64,
    /// Maximum Shannon entropy over the labels of `L_k`.
    pub entropy_max: f64,
    /// Minimum Shannon entropy.
    pub entropy_min: f64,
    /// Mean Shannon entropy.
    pub entropy_mean: f64,
    /// Median Shannon entropy.
    pub entropy_median: f64,
    /// Variance of the Shannon entropies.
    pub entropy_variance: f64,
    /// Median of the group's cache-hit-rate distribution.
    pub chr_median: f64,
    /// Fraction of the group's CHR weight at exactly zero.
    pub chr_zero_fraction: f64,
}

impl GroupFeatures {
    /// Computes the vector for a group in a tree.
    pub fn compute(tree: &DomainTree, group: &GroupMembers) -> GroupFeatures {
        let entropy = entropy_stats(&group.adjacent_labels);
        let chr = group_chr(tree, group);
        GroupFeatures {
            cardinality: group.adjacent_labels.len() as f64,
            entropy_max: entropy.max,
            entropy_min: entropy.min,
            entropy_mean: entropy.mean,
            entropy_median: entropy.median,
            entropy_variance: entropy.variance,
            chr_median: chr.median(),
            chr_zero_fraction: chr.zero_fraction(),
        }
    }

    /// The vector as a feature slice for the ML crate, ordered per
    /// [`FEATURE_NAMES`].
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.cardinality,
            self.entropy_max,
            self.entropy_min,
            self.entropy_mean,
            self.entropy_median,
            self.entropy_variance,
            self.chr_median,
            self.chr_zero_fraction,
        ]
    }
}

/// The group's cache-hit-rate distribution: every member RR's DHR value,
/// weighted by its miss count (§V-A2's "Cache Hit Rate Features").
pub(crate) fn group_chr(tree: &DomainTree, group: &GroupMembers) -> ChrDistribution {
    let samples: Vec<(f64, u64)> = group
        .members
        .iter()
        .flat_map(|&id| tree.node_chr(id).iter().map(|&(dhr, misses)| (dhr, u64::from(misses))))
        .collect();
    ChrDistribution::from_samples(samples)
}

struct EntropyStats {
    max: f64,
    min: f64,
    mean: f64,
    median: f64,
    variance: f64,
}

fn entropy_stats(labels: &[Label]) -> EntropyStats {
    if labels.is_empty() {
        return EntropyStats { max: 0.0, min: 0.0, mean: 0.0, median: 0.0, variance: 0.0 };
    }
    let mut h: Vec<f64> = labels.iter().map(Label::entropy).collect();
    h.sort_unstable_by(|a, b| a.partial_cmp(b).expect("entropy is finite"));
    let n = h.len() as f64;
    let mean = h.iter().sum::<f64>() / n;
    let variance = h.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let median =
        if h.len() % 2 == 1 { h[h.len() / 2] } else { (h[h.len() / 2 - 1] + h[h.len() / 2]) / 2.0 };
    EntropyStats { max: *h.last().expect("non-empty"), min: h[0], mean, median, variance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_dns::Name;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn label(s: &str) -> Label {
        s.parse().unwrap()
    }

    #[test]
    fn disposable_looking_group_scores_high_entropy_and_zero_chr() {
        let mut tree = DomainTree::new();
        // Machine-generated children, each looked up once and missed once.
        for i in 0..100 {
            let name = format!("{}.avqs.vendor.com", dnsnoise_workload::label_base32(i, 24));
            tree.observe(&n(&name), 0.0, 1);
        }
        let groups = tree.groups_under(&n("avqs.vendor.com")).unwrap();
        let f = GroupFeatures::compute(&tree, &groups.groups[&4]);
        assert_eq!(f.cardinality, 100.0);
        assert!(f.entropy_mean > 3.0, "hash labels have high entropy: {}", f.entropy_mean);
        assert_eq!(f.chr_median, 0.0);
        assert_eq!(f.chr_zero_fraction, 1.0);
    }

    #[test]
    fn popular_looking_group_scores_low_entropy_and_good_chr() {
        let mut tree = DomainTree::new();
        for (host, dhr, misses) in [("www", 0.95, 20), ("mail", 0.9, 12), ("api", 0.8, 30)] {
            tree.observe(&n(&format!("{host}.bigsite.com")), dhr, misses);
        }
        let groups = tree.groups_under(&n("bigsite.com")).unwrap();
        let f = GroupFeatures::compute(&tree, &groups.groups[&3]);
        assert_eq!(f.cardinality, 3.0);
        assert!(f.entropy_mean < 2.5, "human labels have low entropy: {}", f.entropy_mean);
        assert!(f.chr_median >= 0.8);
        assert_eq!(f.chr_zero_fraction, 0.0);
    }

    #[test]
    fn entropy_stats_on_singleton() {
        let stats = entropy_stats(&[label("aaaa")]);
        assert_eq!(stats.max, 0.0);
        assert_eq!(stats.min, 0.0);
        assert_eq!(stats.variance, 0.0);
    }

    #[test]
    fn entropy_median_even_count() {
        let labels = [label("aaaa"), label("abcd")];
        let stats = entropy_stats(&labels);
        assert!((stats.median - 1.0).abs() < 1e-12); // (0 + 2) / 2
        assert_eq!(stats.max, 2.0);
        assert_eq!(stats.min, 0.0);
    }

    #[test]
    fn to_vec_matches_feature_names() {
        let f = GroupFeatures {
            cardinality: 1.0,
            entropy_max: 2.0,
            entropy_min: 3.0,
            entropy_mean: 4.0,
            entropy_median: 5.0,
            entropy_variance: 6.0,
            chr_median: 7.0,
            chr_zero_fraction: 8.0,
        };
        let v = f.to_vec();
        assert_eq!(v.len(), FEATURE_COUNT);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
    }
}
