//! Mining-run reporting and evaluation against ground truth.

use std::collections::HashSet;

use dnsnoise_dns::{Name, SuffixList};
use dnsnoise_workload::GroundTruth;
use serde::{Deserialize, Serialize};

use crate::miner::Finding;
use crate::tree::DomainTree;

/// A ranked disposable-zone finding (the "Disposable Zone Ranking" output
/// of Fig. 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneRanking {
    /// The zone.
    pub zone: Name,
    /// Disposable group depth.
    pub depth: usize,
    /// Classifier confidence.
    pub confidence: f64,
    /// Decolored names.
    pub members: usize,
}

/// The outcome of one daily mining run, with ground-truth evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MiningReport {
    /// Zero-based day.
    pub day: u64,
    /// Raw findings in discovery order.
    pub found: Vec<Finding>,
    /// Findings sorted by confidence, then size.
    pub ranking: Vec<ZoneRanking>,
    /// Distinct effective 2LDs among found zones (Fig. 11 reports 12,397
    /// 2LDs for 14,488 zones).
    pub unique_2lds: usize,
    /// Ground-truth disposable zones large enough to be found.
    pub eligible_disposable: usize,
    /// Of those, how many a finding covered (zone + depth match).
    pub detected_disposable: usize,
    /// Ground-truth non-disposable zones with a classifiable group.
    pub eligible_nondisposable: usize,
    /// Non-disposable zones wrongly covered by a finding.
    pub false_disposable: usize,
    /// Findings that match no ground-truth disposable zone.
    pub unmatched_findings: usize,
}

impl MiningReport {
    /// Zone-level true positive rate.
    pub fn tpr(&self) -> f64 {
        if self.eligible_disposable == 0 {
            0.0
        } else {
            self.detected_disposable as f64 / self.eligible_disposable as f64
        }
    }

    /// Zone-level false positive rate.
    pub fn fpr(&self) -> f64 {
        if self.eligible_nondisposable == 0 {
            0.0
        } else {
            self.false_disposable as f64 / self.eligible_nondisposable as f64
        }
    }

    /// Fraction of findings that correspond to a real disposable zone.
    pub fn precision(&self) -> f64 {
        if self.found.is_empty() {
            0.0
        } else {
            1.0 - self.unmatched_findings as f64 / self.found.len() as f64
        }
    }

    /// Builds the report: ranks findings and scores them against ground
    /// truth.
    ///
    /// `min_group_size` must match the miner's configuration — it defines
    /// which ground-truth zones were findable at all.
    pub fn evaluate(
        day: u64,
        found: Vec<Finding>,
        tree: &DomainTree,
        gt: &GroundTruth,
        psl: &SuffixList,
        min_group_size: usize,
    ) -> MiningReport {
        let mut ranking: Vec<ZoneRanking> = found
            .iter()
            .map(|f| ZoneRanking {
                zone: f.zone.clone(),
                depth: f.depth,
                confidence: f.confidence,
                members: f.members,
            })
            .collect();
        ranking.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("confidence is finite")
                .then(b.members.cmp(&a.members))
                .then_with(|| a.zone.cmp(&b.zone))
                .then_with(|| a.depth.cmp(&b.depth))
        });

        let unique_2lds = found
            .iter()
            .filter_map(|f| psl.registered_domain(&f.zone))
            .collect::<HashSet<_>>()
            .len();

        // A finding covers a GT zone when the GT apex is the finding's
        // zone or a descendant of it, and the group depth matches the GT
        // child depth (for disposable zones) or any observed depth (for
        // non-disposable zones).
        let covers = |f: &Finding, apex: &Name, depth: Option<usize>| -> bool {
            apex.is_subdomain_of(&f.zone) && depth.is_none_or(|d| d == f.depth)
        };

        let mut eligible_disposable = 0;
        let mut detected_disposable = 0;
        let mut matched_findings: HashSet<usize> = HashSet::new();
        for zone in gt.disposable_zones() {
            let Some(depth) = zone.child_depth else { continue };
            let findable = tree
                .groups_under(&zone.apex)
                .and_then(|g| g.groups.get(&depth).map(|m| m.members.len()))
                .unwrap_or(0)
                >= min_group_size;
            if !findable {
                continue;
            }
            eligible_disposable += 1;
            let mut hit = false;
            for (i, f) in found.iter().enumerate() {
                if covers(f, &zone.apex, Some(depth)) {
                    matched_findings.insert(i);
                    hit = true;
                }
            }
            if hit {
                detected_disposable += 1;
            }
        }

        let mut eligible_nondisposable = 0;
        let mut false_disposable = 0;
        for zone in gt.nondisposable_zones() {
            let classifiable = tree
                .groups_under(&zone.apex)
                .map(|g| g.groups.values().any(|m| m.members.len() >= min_group_size))
                .unwrap_or(false);
            if !classifiable {
                continue;
            }
            eligible_nondisposable += 1;
            // Any finding rooted at or below this benign apex flags it —
            // unless that finding also matched a real disposable zone
            // nested underneath (e.g. an experiment zone under a popular
            // 2LD like google.com).
            let flagged = found.iter().enumerate().any(|(i, f)| {
                !matched_findings.contains(&i)
                    && (f.zone.is_subdomain_of(&zone.apex) || zone.apex.is_subdomain_of(&f.zone))
            });
            if flagged {
                false_disposable += 1;
            }
        }

        let unmatched_findings = (0..found.len()).filter(|i| !matched_findings.contains(i)).count();

        MiningReport {
            day,
            found,
            ranking,
            unique_2lds,
            eligible_disposable,
            detected_disposable,
            eligible_nondisposable,
            false_disposable,
            unmatched_findings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_workload::{Scenario, ScenarioConfig};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn gt() -> GroundTruth {
        Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.05), 7).ground_truth().clone()
    }

    fn tree_with(gt: &GroundTruth, per_zone: usize) -> DomainTree {
        let mut tree = DomainTree::new();
        for (zi, zone) in gt.disposable_zones().enumerate() {
            let depth = zone.child_depth.unwrap();
            let pad = depth - zone.apex.depth() - 1;
            for i in 0..per_zone {
                let mut name = zone.apex.clone();
                for p in 0..pad {
                    name = name.child(format!("x{p}").parse().unwrap());
                }
                name = name.child(dnsnoise_workload::label_base32((zi * 1000 + i) as u64, 16));
                tree.observe(&name, 0.0, 1);
            }
        }
        for zone in gt.nondisposable_zones().take(50) {
            for host in
                ["www", "mail", "api", "img", "static", "login", "m", "news", "shop", "blog"]
            {
                tree.observe(&zone.apex.child(host.parse().unwrap()), 0.8, 5);
            }
        }
        tree
    }

    #[test]
    fn perfect_findings_score_perfectly() {
        let gt = gt();
        let tree = tree_with(&gt, 20);
        let found: Vec<Finding> = gt
            .disposable_zones()
            .map(|z| Finding {
                zone: z.apex.clone(),
                depth: z.child_depth.unwrap(),
                confidence: 0.95,
                members: 20,
            })
            .collect();
        let report = MiningReport::evaluate(0, found, &tree, &gt, &SuffixList::builtin(), 10);
        assert_eq!(report.tpr(), 1.0);
        assert_eq!(report.fpr(), 0.0);
        assert_eq!(report.precision(), 1.0);
        assert!(report.unique_2lds > 0);
    }

    #[test]
    fn no_findings_scores_zero_tpr() {
        let gt = gt();
        let tree = tree_with(&gt, 20);
        let report = MiningReport::evaluate(0, vec![], &tree, &gt, &SuffixList::builtin(), 10);
        assert_eq!(report.tpr(), 0.0);
        assert_eq!(report.fpr(), 0.0);
        assert!(report.eligible_disposable > 0);
    }

    #[test]
    fn benign_finding_counts_as_false_positive() {
        let gt = gt();
        let tree = tree_with(&gt, 20);
        let benign = gt.nondisposable_zones().next().unwrap().apex.clone();
        let found = vec![Finding { zone: benign, depth: 3, confidence: 0.92, members: 10 }];
        let report = MiningReport::evaluate(0, found, &tree, &gt, &SuffixList::builtin(), 10);
        assert!(report.fpr() > 0.0);
        assert_eq!(report.precision(), 0.0);
        assert_eq!(report.unmatched_findings, 1);
    }

    #[test]
    fn small_zones_are_not_eligible() {
        let gt = gt();
        let tree = tree_with(&gt, 3); // below min_group_size
        let report = MiningReport::evaluate(0, vec![], &tree, &gt, &SuffixList::builtin(), 10);
        assert_eq!(report.eligible_disposable, 0);
    }

    #[test]
    fn ranking_sorts_by_confidence_then_size() {
        let gt = gt();
        let tree = tree_with(&gt, 20);
        let found = vec![
            Finding { zone: n("a.example.com"), depth: 4, confidence: 0.91, members: 50 },
            Finding { zone: n("b.example.com"), depth: 4, confidence: 0.99, members: 10 },
            Finding { zone: n("c.example.com"), depth: 4, confidence: 0.91, members: 90 },
        ];
        let report = MiningReport::evaluate(0, found, &tree, &gt, &SuffixList::builtin(), 10);
        let order: Vec<String> = report.ranking.iter().map(|r| r.zone.to_string()).collect();
        assert_eq!(order, vec!["b.example.com", "c.example.com", "a.example.com"]);
    }
}
