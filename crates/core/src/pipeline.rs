//! The daily mining pipeline of Fig. 10: fpDNS → Domain Name Tree Builder
//! → Disposable Domain Classifier → Disposable Zone Ranking.

use dnsnoise_dns::SuffixList;
use dnsnoise_resolver::{ResolverSim, SimConfig};
use dnsnoise_workload::Scenario;

use crate::labeling::TrainingSetBuilder;
use crate::miner::{Miner, MinerConfig};
use crate::report::MiningReport;
use crate::tree::DomainTree;

/// An end-to-end daily pipeline: simulate the cluster, build the tree,
/// train (on day 0) and mine, then evaluate against ground truth.
///
/// The resolver's caches persist across days, like a production cluster;
/// the classifier is trained once on the first processed day and reused,
/// mirroring the paper's train-once / mine-daily deployment.
#[derive(Debug)]
pub struct DailyPipeline {
    config: MinerConfig,
    training: TrainingSetBuilder,
    sim: ResolverSim,
    psl: SuffixList,
    miner: Option<Miner>,
}

impl DailyPipeline {
    /// Creates a pipeline with a default resolver cluster.
    pub fn new(config: MinerConfig) -> Self {
        DailyPipeline::with_sim(config, ResolverSim::new(SimConfig::default()))
    }

    /// Creates a pipeline over a custom resolver simulation.
    pub fn with_sim(config: MinerConfig, sim: ResolverSim) -> Self {
        DailyPipeline {
            config,
            training: TrainingSetBuilder::default(),
            sim,
            psl: SuffixList::builtin(),
            miner: None,
        }
    }

    /// Overrides the training-set selection parameters (before the first
    /// `run_day`).
    pub fn set_training(&mut self, training: TrainingSetBuilder) {
        self.training = training;
    }

    /// Whether the classifier has been trained yet.
    pub fn is_trained(&self) -> bool {
        self.miner.is_some()
    }

    /// Access to the trained miner, once available.
    pub fn miner(&self) -> Option<&Miner> {
        self.miner.as_ref()
    }

    /// Processes one scenario day end to end and returns the evaluated
    /// mining report.
    pub fn run_day(&mut self, scenario: &Scenario, day: u64) -> MiningReport {
        let trace = scenario.generate_day(day);
        let gt = scenario.ground_truth();
        let report = self.sim.day(&trace).ground_truth(gt).run();
        let mut tree = DomainTree::from_day_stats(&report.rr_stats);

        if self.miner.is_none() {
            let labeled = self.training.build(&tree, gt);
            self.miner = Some(Miner::train(&labeled, self.config));
        }
        let miner = self.miner.as_ref().expect("trained above");

        // Evaluate on a pristine copy of the black/white state: mining
        // decolors the tree, so measure eligibility first.
        let found = miner.mine(&mut tree, &self.psl);
        // Rebuild an un-decolored tree for evaluation bookkeeping.
        let eval_tree = DomainTree::from_day_stats(&report.rr_stats);
        MiningReport::evaluate(day, found, &eval_tree, gt, &self.psl, self.config.min_group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_workload::ScenarioConfig;

    #[test]
    fn pipeline_finds_zones_with_good_accuracy() {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.15), 21);
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let report = pipeline.run_day(&scenario, 0);
        assert!(pipeline.is_trained());
        assert!(report.eligible_disposable > 20, "eligible {}", report.eligible_disposable);
        // In-sample day: the paper reports 97% TPR / 1% FPR out-of-fold;
        // require solid-but-looser bounds here.
        assert!(report.tpr() > 0.7, "tpr {}", report.tpr());
        assert!(report.fpr() < 0.15, "fpr {}", report.fpr());
    }

    #[test]
    fn second_day_reuses_the_trained_model() {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.08), 21);
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let r0 = pipeline.run_day(&scenario, 0);
        let r1 = pipeline.run_day(&scenario, 1);
        assert_eq!(r0.day, 0);
        assert_eq!(r1.day, 1);
        assert!(r1.tpr() > 0.5, "day-1 tpr {}", r1.tpr());
    }
}
