//! The daily mining pipeline of Fig. 10: fpDNS → Domain Name Tree Builder
//! → Disposable Domain Classifier → Disposable Zone Ranking.

use dnsnoise_dns::SuffixList;
use dnsnoise_resolver::{OverloadConfig, ResolverSim, SimConfig};
use dnsnoise_workload::{DayTrace, Scenario};

use crate::labeling::TrainingSetBuilder;
use crate::miner::{Miner, MinerConfig};
use crate::report::MiningReport;
use crate::tree::DomainTree;

/// An end-to-end daily pipeline: simulate the cluster, build the tree,
/// train (on day 0) and mine, then evaluate against ground truth.
///
/// The resolver's caches persist across days, like a production cluster;
/// the classifier is trained once on the first processed day and reused,
/// mirroring the paper's train-once / mine-daily deployment.
#[derive(Debug)]
pub struct DailyPipeline {
    config: MinerConfig,
    training: TrainingSetBuilder,
    sim: ResolverSim,
    psl: SuffixList,
    miner: Option<Miner>,
}

impl DailyPipeline {
    /// Creates a pipeline with a default resolver cluster.
    pub fn new(config: MinerConfig) -> Self {
        DailyPipeline::with_sim(config, ResolverSim::new(SimConfig::default()))
    }

    /// Creates a pipeline over a custom resolver simulation.
    pub fn with_sim(config: MinerConfig, sim: ResolverSim) -> Self {
        DailyPipeline {
            config,
            training: TrainingSetBuilder::default(),
            sim,
            psl: SuffixList::builtin(),
            miner: None,
        }
    }

    /// Overrides the training-set selection parameters (before the first
    /// `run_day`).
    pub fn set_training(&mut self, training: TrainingSetBuilder) {
        self.training = training;
    }

    /// Whether the classifier has been trained yet.
    pub fn is_trained(&self) -> bool {
        self.miner.is_some()
    }

    /// Access to the trained miner, once available.
    pub fn miner(&self) -> Option<&Miner> {
        self.miner.as_ref()
    }

    /// Consumes the pipeline and hands over the trained classifier — the
    /// train-once-offline, deploy-streaming handoff: train on seed days
    /// with the batch pipeline, then drive `dnsnoise-stream` with the
    /// resulting model.
    pub fn into_miner(self) -> Option<Miner> {
        self.miner
    }

    /// Processes one scenario day end to end and returns the evaluated
    /// mining report.
    pub fn run_day(&mut self, scenario: &Scenario, day: u64) -> MiningReport {
        let trace = scenario.generate_day(day);
        self.run_trace(&trace, scenario, None)
    }

    /// Processes a pre-built trace — e.g. one with injected attack
    /// traffic ([`AttackPlan::inject`](dnsnoise_workload::AttackPlan)) —
    /// optionally behind admission control, and returns the evaluated
    /// mining report. `scenario` supplies the ground truth the trace was
    /// generated from; the miner itself never sees it.
    pub fn run_trace(
        &mut self,
        trace: &DayTrace,
        scenario: &Scenario,
        overload: Option<&OverloadConfig>,
    ) -> MiningReport {
        let day = trace.day;
        let gt = scenario.ground_truth();
        let mut run = self.sim.day(trace).ground_truth(gt);
        if let Some(cfg) = overload {
            run = run.overload(cfg);
        }
        let report = run.run();
        let mut tree = DomainTree::from_day_stats(&report.rr_stats);

        if self.miner.is_none() {
            let labeled = self.training.build(&tree, gt);
            self.miner = Some(Miner::train(&labeled, self.config));
        }
        let miner = self.miner.as_ref().expect("trained above");

        // Evaluate on a pristine copy of the black/white state: mining
        // decolors the tree, so measure eligibility first.
        let found = miner.mine(&mut tree, &self.psl);
        // Rebuild an un-decolored tree for evaluation bookkeeping.
        let eval_tree = DomainTree::from_day_stats(&report.rr_stats);
        MiningReport::evaluate(day, found, &eval_tree, gt, &self.psl, self.config.min_group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_workload::ScenarioConfig;

    #[test]
    fn pipeline_finds_zones_with_good_accuracy() {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.15), 21);
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let report = pipeline.run_day(&scenario, 0);
        assert!(pipeline.is_trained());
        assert!(report.eligible_disposable > 20, "eligible {}", report.eligible_disposable);
        // In-sample day: the paper reports 97% TPR / 1% FPR out-of-fold;
        // require solid-but-looser bounds here.
        assert!(report.tpr() > 0.7, "tpr {}", report.tpr());
        assert!(report.fpr() < 0.15, "fpr {}", report.fpr());
    }

    #[test]
    fn flooded_day_under_admission_control_keeps_miner_accuracy() {
        use dnsnoise_workload::AttackPlan;

        let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.08), 21);
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let clean = pipeline.run_day(&scenario, 0);

        // Day 1 carries a random-subdomain flood; the cluster sheds under
        // a tight admission budget. The flood is pure NXDOMAIN noise, so
        // the domain tree the miner walks must stay close to the clean
        // day and the classifier must not drift into false positives.
        let mut flooded = scenario.generate_day(1);
        let attack: AttackPlan =
            "seed=4; victim=flood-a.example; victim=flood-b.example; labellen=16; \
             surge=0,86400,6"
                .parse()
                .expect("static attack spec");
        attack.inject(&mut flooded);
        let overload =
            dnsnoise_resolver::OverloadConfig::default().with_queue_depth(32).with_rrl(5);
        let report = pipeline.run_trace(&flooded, &scenario, Some(&overload));

        assert!(report.tpr() > 0.5, "flooded-day tpr {}", report.tpr());
        assert!(report.fpr() < 0.15, "flooded-day fpr {}", report.fpr());
        assert!(
            report.eligible_disposable * 2 >= clean.eligible_disposable,
            "flood crushed eligibility: {} vs clean {}",
            report.eligible_disposable,
            clean.eligible_disposable
        );
    }

    #[test]
    fn second_day_reuses_the_trained_model() {
        let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.08), 21);
        let mut pipeline = DailyPipeline::new(MinerConfig::default());
        let r0 = pipeline.run_day(&scenario, 0);
        let r1 = pipeline.run_day(&scenario, 1);
        assert_eq!(r0.day, 0);
        assert_eq!(r1.day, 1);
        assert!(r1.tpr() > 0.5, "day-1 tpr {}", r1.tpr());
    }
}
