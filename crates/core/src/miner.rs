//! Algorithm 1: the recursive disposable-zone classification process.

use dnsnoise_dns::{Name, SuffixList};
use dnsnoise_ml::{LadTree, Model};
use serde::{Deserialize, Serialize};

use crate::features::GroupFeatures;
use crate::labeling::LabeledZones;
use crate::tree::DomainTree;

/// Miner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Classification confidence threshold θ (Algorithm 1 line 5 sets
    /// 0.9).
    pub theta: f64,
    /// Smallest group worth classifying. Tiny groups carry too little
    /// signal; the paper's training floor of 15 names motivates a
    /// comparable mining floor.
    pub min_group_size: usize,
    /// LAD-tree boosting iterations.
    pub iterations: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig { theta: 0.9, min_group_size: 10, iterations: 60 }
    }
}

/// One Algorithm 1 output: the pair `(zone, k)` with its confidence and
/// the number of decolored member names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The inspected zone `z`.
    pub zone: Name,
    /// The depth `k` of the disposable group.
    pub depth: usize,
    /// The classifier's confidence `p`.
    pub confidence: f64,
    /// Number of member names decolored.
    pub members: usize,
}

/// The trained disposable zone miner.
pub struct Miner {
    model: Box<dyn Model>,
    config: MinerConfig,
}

impl std::fmt::Debug for Miner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Miner").field("config", &self.config).finish()
    }
}

impl Miner {
    /// Wraps an already-trained model.
    pub fn new(model: Box<dyn Model>, config: MinerConfig) -> Self {
        Miner { model, config }
    }

    /// Trains a LAD tree on the labeled zones, as §V-C does.
    ///
    /// # Panics
    ///
    /// Panics if the labeled set is empty.
    pub fn train(labeled: &LabeledZones, config: MinerConfig) -> Self {
        Miner { model: Box::new(Self::train_model(labeled, config)), config }
    }

    /// Trains and returns the concrete LAD-tree model, for persistence
    /// with [`dnsnoise_ml::persist`].
    ///
    /// # Panics
    ///
    /// Panics if the labeled set is empty.
    pub fn train_model(labeled: &LabeledZones, config: MinerConfig) -> dnsnoise_ml::LadTreeModel {
        let data = labeled.dataset().expect("training set must be non-empty");
        LadTree::with_iterations(config.iterations).fit_ladtree(&data)
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Scores a single group feature vector (the classifier `C`).
    pub fn score(&self, features: &GroupFeatures) -> f64 {
        self.model.score(&features.to_vec())
    }

    /// Runs Algorithm 1 over the whole tree: from every effective 2LD,
    /// classify depth groups, decolor disposable ones, recurse.
    ///
    /// The tree is mutated (decoloring); run on a fresh tree per day as
    /// the paper's daily process does (Fig. 10).
    pub fn mine(&self, tree: &mut DomainTree, psl: &SuffixList) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (node, name) in tree.registered_domains(psl) {
            self.classify_zone(tree, node, name, &mut findings);
        }
        findings
    }

    /// Algorithm 1 for one zone `z` (recursive).
    fn classify_zone(
        &self,
        tree: &mut DomainTree,
        zone_id: usize,
        zone: Name,
        out: &mut Vec<Finding>,
    ) {
        let depth = zone.depth();
        let groups = tree.groups_under_id(zone_id, depth);
        // Line 1-3: no black descendants → stop.
        if groups.groups.is_empty() {
            return;
        }
        // Lines 6-14: classify each G_k; decolor and emit on a confident
        // disposable verdict.
        let mut depths: Vec<usize> = groups.groups.keys().copied().collect();
        depths.sort_unstable();
        for k in depths {
            let group = &groups.groups[&k];
            if group.members.len() < self.config.min_group_size {
                continue;
            }
            let features = GroupFeatures::compute(tree, group);
            let p = self.model.score(&features.to_vec());
            if p >= self.config.theta {
                for &member in &group.members {
                    tree.decolor(member);
                }
                out.push(Finding {
                    zone: zone.clone(),
                    depth: k,
                    confidence: p,
                    members: group.members.len(),
                });
            }
        }
        // Lines 15-17: recurse into children.
        let children: Vec<usize> = tree.children_of(zone_id).collect();
        for child in children {
            let label = tree.label_of(child).expect("non-root node has a label").clone();
            self.classify_zone(tree, child, zone.child(label), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnsnoise_ml::{Dataset, Learner as _};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// A stand-in model: flags groups with many distinct high-entropy
    /// labels and near-total zero cache hit rates. (A single human word
    /// like "metrics" also has per-character entropy > 2.5, so cardinality
    /// is essential — exactly what the trained classifier learns.)
    struct RuleModel;
    impl Model for RuleModel {
        fn score(&self, x: &[f64]) -> f64 {
            let cardinality = x[0];
            let entropy_mean = x[3];
            let zero_frac = x[7];
            if cardinality >= 10.0 && zero_frac >= 0.9 && entropy_mean > 2.5 {
                0.99
            } else {
                0.01
            }
        }
    }

    fn hashy_tree() -> DomainTree {
        let mut tree = DomainTree::new();
        // Disposable-looking: 50 hash children of tracker zone.
        for i in 0..50u64 {
            let name = format!("{}.metrics.tracker.com", dnsnoise_workload::label_base32(i, 20));
            tree.observe(&n(&name), 0.0, 1);
        }
        // Benign: stable hosts with good hit rates.
        for host in [
            "www", "mail", "api", "img", "static", "login", "m", "news", "shop", "blog", "cdn",
            "sso",
        ] {
            tree.observe(&n(&format!("{host}.bigsite.com")), 0.9, 10);
        }
        tree
    }

    #[test]
    fn algorithm_one_finds_the_disposable_zone() {
        let mut tree = hashy_tree();
        let miner = Miner::new(
            Box::new(RuleModel),
            MinerConfig { min_group_size: 10, ..Default::default() },
        );
        let findings = miner.mine(&mut tree, &SuffixList::builtin());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].zone, n("metrics.tracker.com"));
        assert_eq!(findings[0].depth, 4);
        assert_eq!(findings[0].members, 50);
    }

    #[test]
    fn decoloring_prevents_double_reporting() {
        let mut tree = hashy_tree();
        let miner = Miner::new(
            Box::new(RuleModel),
            MinerConfig { min_group_size: 10, ..Default::default() },
        );
        let findings = miner.mine(&mut tree, &SuffixList::builtin());
        // The group members were decolored: re-running on the same
        // (already-decolored) tree finds nothing new.
        let again = miner.mine(&mut tree, &SuffixList::builtin());
        assert_eq!(findings.len(), 1);
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn small_groups_are_skipped() {
        let mut tree = DomainTree::new();
        for i in 0..5u64 {
            let name = format!("{}.tiny.example.com", dnsnoise_workload::label_base32(i, 20));
            tree.observe(&n(&name), 0.0, 1);
        }
        let miner = Miner::new(
            Box::new(RuleModel),
            MinerConfig { min_group_size: 10, ..Default::default() },
        );
        let findings = miner.mine(&mut tree, &SuffixList::builtin());
        assert!(findings.is_empty());
    }

    #[test]
    fn trained_miner_separates_synthetic_classes() {
        // Train a real LAD tree on synthetic feature rows and check the
        // end-to-end mine() finds the hashy zone.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let e = 3.5 + f64::from(i % 7) * 0.1;
            rows.push(vec![40.0 + f64::from(i), e, e - 0.5, e, e, 0.05, 0.0, 0.97]);
            labels.push(true);
            rows.push(vec![5.0 + f64::from(i % 10), 2.0, 1.0, 1.5, 1.5, 0.2, 0.7, 0.1]);
            labels.push(false);
        }
        let data = Dataset::new(rows.clone(), labels.clone()).unwrap();
        let model = dnsnoise_ml::LadTree::default().fit(&data);
        let miner = Miner::new(model, MinerConfig { min_group_size: 10, ..Default::default() });

        let mut tree = hashy_tree();
        let findings = miner.mine(&mut tree, &SuffixList::builtin());
        assert!(findings.iter().any(|f| f.zone == n("metrics.tracker.com")), "{findings:?}");
        assert!(!findings.iter().any(|f| f.zone == n("bigsite.com")), "{findings:?}");
    }
}
