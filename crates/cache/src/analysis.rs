//! Analytical TTL-cache models (Jung, Berger & Balakrishnan, "Modeling
//! TTL-based Internet caches", INFOCOM 2003 — the paper's §II-B3).
//!
//! The DSN paper measures cache hit rates as a black box because the
//! renewal model's assumptions (uniform TTLs, one shared cache, inferable
//! client queries) do not hold at its monitoring point. This module
//! provides the renewal model anyway, both as a baseline to compare the
//! simulation against and as the analytical tool an operator would use to
//! size caches.
//!
//! Under Poisson query arrivals at rate `λ` and a fixed TTL `T`, a cache
//! entry's lifecycle is a renewal process: a miss loads the entry, every
//! arrival within `T` hits, and the first arrival after expiry misses
//! again. The expected number of hits per cycle is `λT`, giving
//!
//! ```text
//! hit_rate(λ, T) = λT / (1 + λT)
//! ```

use dnsnoise_dns::Ttl;

/// The expected hit rate of a TTL cache entry with Poisson(λ) arrivals —
/// `λT / (1 + λT)`.
///
/// `lambda` is in queries per second. Returns 0 for a zero TTL or a
/// non-positive rate.
///
/// # Examples
///
/// ```
/// use dnsnoise_cache::analysis::renewal_hit_rate;
/// use dnsnoise_dns::Ttl;
///
/// // One query per second against a 300 s TTL: almost every query hits.
/// let h = renewal_hit_rate(1.0, Ttl::from_secs(300));
/// assert!(h > 0.99);
///
/// // One query per hour against a 60 s TTL: almost every query misses.
/// let h = renewal_hit_rate(1.0 / 3600.0, Ttl::from_secs(60));
/// assert!(h < 0.02);
/// ```
pub fn renewal_hit_rate(lambda: f64, ttl: Ttl) -> f64 {
    if lambda <= 0.0 || ttl.is_zero() {
        return 0.0;
    }
    let lt = lambda * f64::from(ttl.as_secs());
    lt / (1.0 + lt)
}

/// Expected misses per day for one entry under Poisson(λ) arrivals:
/// `86400·λ / (1 + λT)`.
pub fn expected_daily_misses(lambda: f64, ttl: Ttl) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    let queries = 86_400.0 * lambda;
    queries * (1.0 - renewal_hit_rate(lambda, ttl))
}

/// The arrival rate needed to reach hit rate `h` with TTL `T`:
/// the inverse of [`renewal_hit_rate`], `λ = h / (T(1−h))`.
///
/// Returns `None` if `h` is outside `[0, 1)` or the TTL is zero.
pub fn lambda_for_hit_rate(h: f64, ttl: Ttl) -> Option<f64> {
    if !(0.0..1.0).contains(&h) || ttl.is_zero() {
        return None;
    }
    Some(h / (f64::from(ttl.as_secs()) * (1.0 - h)))
}

/// Why the DSN paper could not apply the renewal model directly, encoded
/// as a checkable predicate: the model assumes (1) a uniform TTL per item
/// and (2) a single shared cache. Returns `true` when a deployment
/// satisfies both, i.e. when [`renewal_hit_rate`] is trustworthy for it.
pub fn renewal_model_applies(uniform_ttl: bool, cluster_members: usize) -> bool {
    uniform_ttl && cluster_members == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::{CacheKey, InsertPriority, TtlLru};
    use dnsnoise_dns::{QType, RData, Record, Timestamp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::net::Ipv4Addr;

    #[test]
    fn formula_edge_cases() {
        assert_eq!(renewal_hit_rate(0.0, Ttl::from_secs(60)), 0.0);
        assert_eq!(renewal_hit_rate(1.0, Ttl::ZERO), 0.0);
        assert_eq!(expected_daily_misses(0.0, Ttl::from_secs(60)), 0.0);
        // λT = 1 → hit rate exactly 1/2.
        assert!((renewal_hit_rate(1.0 / 60.0, Ttl::from_secs(60)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let ttl = Ttl::from_secs(300);
        for &h in &[0.1, 0.5, 0.9, 0.99] {
            let lambda = lambda_for_hit_rate(h, ttl).unwrap();
            assert!((renewal_hit_rate(lambda, ttl) - h).abs() < 1e-9);
        }
        assert_eq!(lambda_for_hit_rate(1.0, ttl), None);
        assert_eq!(lambda_for_hit_rate(-0.1, ttl), None);
        assert_eq!(lambda_for_hit_rate(0.5, Ttl::ZERO), None);
    }

    #[test]
    fn hit_rate_monotone_in_rate_and_ttl() {
        let h1 = renewal_hit_rate(0.01, Ttl::from_secs(60));
        let h2 = renewal_hit_rate(0.1, Ttl::from_secs(60));
        let h3 = renewal_hit_rate(0.1, Ttl::from_secs(600));
        assert!(h1 < h2 && h2 < h3);
    }

    /// The simulation validates the theory: Poisson arrivals against the
    /// actual [`TtlLru`] reproduce `λT/(1+λT)` within a few percent.
    #[test]
    fn simulation_matches_renewal_formula() {
        let mut rng = StdRng::seed_from_u64(42);
        for (lambda, ttl_secs) in [(0.05f64, 60u32), (0.01, 300), (0.002, 300), (0.1, 20)] {
            let ttl = Ttl::from_secs(ttl_secs);
            let mut cache = TtlLru::new(4);
            let key = CacheKey::new("probe.example.com".parse().unwrap(), QType::A);
            let rr =
                Record::new(key.name.clone(), QType::A, ttl, RData::A(Ipv4Addr::new(192, 0, 2, 1)));

            // Poisson arrivals over ten simulated days.
            let mut t = 0.0f64;
            let horizon = 10.0 * 86_400.0;
            let (mut hits, mut queries) = (0u64, 0u64);
            loop {
                t += -rng.gen::<f64>().ln() / lambda;
                if t > horizon {
                    break;
                }
                let now = Timestamp::from_secs(t as u64);
                queries += 1;
                if cache.get(&key, now).is_some() {
                    hits += 1;
                } else {
                    cache.insert(key.clone(), vec![rr.clone()], now, InsertPriority::Normal);
                }
            }
            let measured = hits as f64 / queries as f64;
            let predicted = renewal_hit_rate(lambda, ttl);
            assert!(
                (measured - predicted).abs() < 0.05,
                "λ={lambda} T={ttl_secs}: measured {measured:.3} vs predicted {predicted:.3}"
            );
        }
    }

    #[test]
    fn applicability_predicate() {
        assert!(renewal_model_applies(true, 1));
        // The DSN monitoring point: mixed TTLs, a cluster of caches.
        assert!(!renewal_model_applies(false, 1));
        assert!(!renewal_model_applies(true, 4));
    }
}
