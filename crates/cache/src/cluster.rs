//! The RDNS server cluster: several independent caches behind a
//! load-balancing strategy.

use serde::{Deserialize, Serialize};

use dnsnoise_dns::Timestamp;

use crate::lru::{CacheKey, CacheStats, TtlLru};
use crate::negative::NegativeCache;

/// How client queries are spread over the cluster's member caches.
///
/// §III-A: "for quality of service reasons (e.g., load balancing and fault
/// tolerance), the DNS queries from the ISP customers are served by a
/// cluster of RDNS servers". The paper's DHR/CHR measurements treat the
/// cluster as a black box with *multiple independent caches*; the strategy
/// determines how much each client's working set is split across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalance {
    /// Each client sticks to one cache (hash of the client id). Typical of
    /// anycast/DNS-VIP-per-subnet deployments.
    HashClient,
    /// Queries rotate over caches regardless of client — the worst case for
    /// cache locality.
    RoundRobin,
    /// The query name picks the cache, giving each cache a disjoint
    /// keyspace (best locality).
    HashName,
}

/// Disjoint mutable access to one cluster member's caches, handed to a
/// shard worker by [`CacheCluster::member_shards`]. Each member is owned
/// by exactly one shard, so workers never contend on cache state.
#[derive(Debug)]
pub struct MemberShard<'a> {
    /// The member's positive record cache.
    pub cache: &'a mut TtlLru,
    /// The member's RFC 2308 negative cache.
    pub negative: &'a mut NegativeCache,
}

/// A cluster of [`TtlLru`] caches plus a shared [`NegativeCache`] per
/// member, routed by a [`LoadBalance`] strategy.
///
/// # Examples
///
/// ```
/// use dnsnoise_cache::{CacheCluster, CacheKey, InsertPriority, LoadBalance};
/// use dnsnoise_dns::{QType, RData, Record, Timestamp, Ttl};
/// use std::net::Ipv4Addr;
///
/// let mut cluster = CacheCluster::new(4, 1000, LoadBalance::HashClient);
/// let name: dnsnoise_dns::Name = "www.example.com".parse()?;
/// let key = CacheKey::new(name.clone(), QType::A);
/// let rr = Record::new(name, QType::A, Ttl::from_secs(60), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
///
/// let idx = cluster.route(7, &key);
/// assert!(cluster.cache_mut(idx).get(&key, Timestamp::ZERO).is_none());
/// cluster.cache_mut(idx).insert(key.clone(), vec![rr], Timestamp::ZERO, InsertPriority::Normal);
/// assert!(cluster.cache_mut(idx).get(&key, Timestamp::from_secs(1)).is_some());
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug)]
pub struct CacheCluster {
    caches: Vec<TtlLru>,
    negatives: Vec<NegativeCache>,
    strategy: LoadBalance,
    round_robin: usize,
    /// Crash state per member: a downed member receives no routes; its
    /// keyspace rehashes onto the survivors until it restarts cold.
    down: Vec<bool>,
}

fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer, used to re-randomize a routing hash when its
/// primary member is down so failover spreads over the survivors.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CacheCluster {
    /// Builds a cluster of `members` caches with `capacity_each` entries
    /// per member and disabled negative caching (the monitored ISP's
    /// observed configuration).
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero or `capacity_each` is zero.
    pub fn new(members: usize, capacity_each: usize, strategy: LoadBalance) -> Self {
        assert!(members > 0, "cluster needs at least one member");
        assert!(capacity_each > 0, "member capacity must be positive");
        CacheCluster {
            caches: (0..members).map(|_| TtlLru::new(capacity_each)).collect(),
            negatives: (0..members).map(|_| NegativeCache::disabled()).collect(),
            strategy,
            round_robin: 0,
            down: vec![false; members],
        }
    }

    /// Replaces every member's negative cache (e.g. to model an RFC
    /// 2308-honouring deployment).
    pub fn set_negative_caches<F>(&mut self, mut make: F)
    where
        F: FnMut() -> NegativeCache,
    {
        for slot in &mut self.negatives {
            *slot = make();
        }
    }

    /// Number of member caches.
    pub fn members(&self) -> usize {
        self.caches.len()
    }

    /// The configured strategy.
    pub fn strategy(&self) -> LoadBalance {
        self.strategy
    }

    /// Picks the member cache that will serve this `(client, key)` pair.
    /// Round-robin advances internal state, so successive calls differ.
    ///
    /// When the primary member is crashed (see
    /// [`CacheCluster::set_member_down`]) the query deterministically
    /// rehashes onto one of the surviving members, so a downed member's
    /// keyspace spreads over the rest of the cluster instead of being
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if every member is down.
    pub fn route(&mut self, client: u64, key: &CacheKey) -> usize {
        let seq = self.round_robin as u64;
        if self.strategy == LoadBalance::RoundRobin {
            self.round_robin = (self.round_robin + 1) % self.caches.len();
        }
        let h = self.route_hash(client, key, seq);
        Self::member_for_hash(h, &self.down)
    }

    /// The pure routing value for `(client, key)` under this cluster's
    /// strategy, with no state advanced. For [`LoadBalance::RoundRobin`]
    /// the caller supplies the sequence number `seq` (the value of
    /// [`CacheCluster::rr_cursor`] plus the event's position in the
    /// stream); hash strategies ignore it. Feeding the result to
    /// [`CacheCluster::member_for_hash`] reproduces [`CacheCluster::route`]
    /// exactly, which is what lets a sharded engine partition a day's
    /// events by owner without replaying them through the cluster.
    pub fn route_hash(&self, client: u64, key: &CacheKey, seq: u64) -> u64 {
        match self.strategy {
            LoadBalance::HashClient => fnv1a(client.to_le_bytes()),
            LoadBalance::RoundRobin => seq % self.caches.len() as u64,
            LoadBalance::HashName => fnv1a(key.name.to_string().bytes()),
        }
    }

    /// Resolves a routing value from [`CacheCluster::route_hash`] to the
    /// serving member under the given crash flags (one per member): the
    /// primary member when it is up, otherwise a deterministic remix onto
    /// the survivors.
    ///
    /// # Panics
    ///
    /// Panics if every member is down.
    pub fn member_for_hash(h: u64, down: &[bool]) -> usize {
        let n = down.len();
        let primary = (h % n as u64) as usize;
        if !down[primary] {
            return primary;
        }
        // Failover: remix the original routing value so the crashed
        // member's keys spread deterministically over the survivors.
        let alive: Vec<usize> = (0..n).filter(|&i| !down[i]).collect();
        assert!(!alive.is_empty(), "every cluster member is down");
        alive[(mix64(h) % alive.len() as u64) as usize]
    }

    /// The round-robin cursor: the sequence number the next
    /// [`CacheCluster::route`] call would consume. Meaningful only under
    /// [`LoadBalance::RoundRobin`].
    pub fn rr_cursor(&self) -> u64 {
        self.round_robin as u64
    }

    /// Advances the round-robin cursor by `events` routes, as if that many
    /// [`CacheCluster::route`] calls had been made — used by engines that
    /// compute routes out-of-band via [`CacheCluster::route_hash`].
    pub fn advance_rr_cursor(&mut self, events: u64) {
        let n = self.caches.len() as u64;
        self.round_robin = ((self.round_robin as u64 + events % n) % n) as usize;
    }

    /// A snapshot of the per-member crash flags.
    pub fn down_flags(&self) -> Vec<bool> {
        self.down.clone()
    }

    /// Sets member `idx`'s crash flag without touching its entries.
    ///
    /// This is for engines that replay crash/restart schedules themselves
    /// (clearing entries at the replayed restart instants); everyone else
    /// should use [`CacheCluster::set_member_down`] /
    /// [`CacheCluster::restart_member_cold`], which keep the flag and the
    /// cache contents consistent.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_member_flag(&mut self, idx: usize, down: bool) {
        self.down[idx] = down;
    }

    /// Mutable access to one member's positive and negative caches at
    /// once, as a [`MemberShard`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn member_mut(&mut self, idx: usize) -> MemberShard<'_> {
        MemberShard { cache: &mut self.caches[idx], negative: &mut self.negatives[idx] }
    }

    /// Splits the cluster into per-member mutable handles, one per member
    /// in index order. The handles borrow disjoint state, so a sharded
    /// engine can hand each to a different worker thread.
    pub fn member_shards(&mut self) -> Vec<MemberShard<'_>> {
        self.caches
            .iter_mut()
            .zip(self.negatives.iter_mut())
            .map(|(cache, negative)| MemberShard { cache, negative })
            .collect()
    }

    /// Marks member `idx` as crashed: it receives no routes until
    /// [`CacheCluster::restart_member_cold`] brings it back.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_member_down(&mut self, idx: usize) {
        self.down[idx] = true;
    }

    /// Brings member `idx` back up with a *cold* cache: positive and
    /// negative entries are gone (a crash loses memory), while the
    /// accumulated counters survive so day-level accounting stays
    /// monotone.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn restart_member_cold(&mut self, idx: usize) {
        self.down[idx] = false;
        self.caches[idx].clear_entries();
        self.negatives[idx].clear_entries();
    }

    /// Whether member `idx` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn member_is_down(&self, idx: usize) -> bool {
        self.down[idx]
    }

    /// Whether any member is currently crashed.
    pub fn any_member_down(&self) -> bool {
        self.down.iter().any(|&d| d)
    }

    /// Mutable access to member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn cache_mut(&mut self, idx: usize) -> &mut TtlLru {
        &mut self.caches[idx]
    }

    /// Mutable access to the negative cache of member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn negative_mut(&mut self, idx: usize) -> &mut NegativeCache {
        &mut self.negatives[idx]
    }

    /// Sum of all member stats.
    pub fn total_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.caches {
            total.merge(c.stats());
        }
        total
    }

    /// Per-member stats snapshots.
    pub fn member_stats(&self) -> Vec<CacheStats> {
        self.caches.iter().map(|c| *c.stats()).collect()
    }

    /// Entry counts per member cache, in member order — the occupancy
    /// gauge a metrics layer samples at day end.
    pub fn member_occupancy(&self) -> Vec<usize> {
        self.caches.iter().map(TtlLru::len).collect()
    }

    /// The per-member entry capacity (every member is built equal).
    pub fn capacity_each(&self) -> usize {
        self.caches.first().map_or(0, TtlLru::capacity)
    }

    /// Total entries across all members.
    pub fn len(&self) -> usize {
        self.caches.iter().map(TtlLru::len).sum()
    }

    /// Returns `true` if every member cache is empty.
    pub fn is_empty(&self) -> bool {
        self.caches.iter().all(TtlLru::is_empty)
    }

    /// Purges expired entries in every member; returns total removed.
    pub fn purge_expired(&mut self, now: Timestamp) -> usize {
        self.caches.iter_mut().map(|c| c.purge_expired(now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::InsertPriority;
    use dnsnoise_dns::{QType, RData, Record, Ttl};
    use std::net::Ipv4Addr;

    fn key(s: &str) -> CacheKey {
        CacheKey::new(s.parse().unwrap(), QType::A)
    }

    fn rr(s: &str, ttl: u32) -> Record {
        Record::new(
            s.parse().unwrap(),
            QType::A,
            Ttl::from_secs(ttl),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        )
    }

    #[test]
    fn hash_client_is_sticky() {
        let mut cl = CacheCluster::new(4, 10, LoadBalance::HashClient);
        let k = key("a.com");
        let first = cl.route(42, &k);
        for _ in 0..10 {
            assert_eq!(cl.route(42, &k), first);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut cl = CacheCluster::new(3, 10, LoadBalance::RoundRobin);
        let k = key("a.com");
        let seq: Vec<usize> = (0..6).map(|_| cl.route(1, &k)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_name_is_client_independent() {
        let mut cl = CacheCluster::new(4, 10, LoadBalance::HashName);
        let k = key("a.com");
        let a = cl.route(1, &k);
        let b = cl.route(999, &k);
        assert_eq!(a, b);
    }

    #[test]
    fn independent_caches_do_not_share_entries() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::RoundRobin);
        let k = key("a.com");
        cl.cache_mut(0).insert(
            k.clone(),
            vec![rr("a.com", 100)],
            Timestamp::ZERO,
            InsertPriority::Normal,
        );
        assert!(cl.cache_mut(0).get(&k, Timestamp::from_secs(1)).is_some());
        assert!(cl.cache_mut(1).get(&k, Timestamp::from_secs(1)).is_none());
    }

    #[test]
    fn total_stats_aggregates_members() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::RoundRobin);
        let k = key("a.com");
        let _ = cl.cache_mut(0).get(&k, Timestamp::ZERO); // miss
        let _ = cl.cache_mut(1).get(&k, Timestamp::ZERO); // miss
        assert_eq!(cl.total_stats().misses, 2);
        assert_eq!(cl.member_stats().len(), 2);
    }

    #[test]
    fn negative_cache_swap() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::HashClient);
        assert!(!cl.negative_mut(0).is_enabled());
        cl.set_negative_caches(|| NegativeCache::new(Ttl::from_secs(900)));
        assert!(cl.negative_mut(0).is_enabled());
        assert!(cl.negative_mut(1).is_enabled());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let _ = CacheCluster::new(0, 10, LoadBalance::HashClient);
    }

    #[test]
    #[should_panic(expected = "member capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CacheCluster::new(2, 0, LoadBalance::HashClient);
    }

    #[test]
    fn downed_member_fails_over_deterministically() {
        let mut cl = CacheCluster::new(4, 10, LoadBalance::HashClient);
        let k = key("a.com");
        // Find a client that routes to member 0.
        let client = (0..256).find(|&c| cl.route(c, &k) == 0).expect("some client maps to 0");
        cl.set_member_down(0);
        let rerouted = cl.route(client, &k);
        assert_ne!(rerouted, 0, "downed member must receive no routes");
        for _ in 0..10 {
            assert_eq!(cl.route(client, &k), rerouted, "failover must be sticky");
        }
        // Different clients of the downed member spread over survivors.
        let mut spread = std::collections::HashSet::new();
        for c in 0..4096 {
            cl.restart_member_cold(0);
            let primary = cl.route(c, &k) == 0;
            cl.set_member_down(0);
            if primary {
                spread.insert(cl.route(c, &k));
            }
        }
        assert!(spread.len() > 1, "failover should use more than one survivor: {spread:?}");
        cl.restart_member_cold(0);
        assert_eq!(cl.route(client, &k), 0, "restart restores the original routing");
    }

    #[test]
    fn restart_is_cold_but_keeps_counters() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::HashClient);
        let k = key("a.com");
        cl.cache_mut(0).insert(
            k.clone(),
            vec![rr("a.com", 100)],
            Timestamp::ZERO,
            InsertPriority::Normal,
        );
        assert!(cl.cache_mut(0).get(&k, Timestamp::from_secs(1)).is_some());
        cl.set_member_down(0);
        assert!(cl.member_is_down(0));
        assert!(cl.any_member_down());
        cl.restart_member_cold(0);
        assert!(!cl.any_member_down());
        assert!(cl.cache_mut(0).get(&k, Timestamp::from_secs(2)).is_none(), "entries lost");
        assert_eq!(cl.total_stats().hits, 1, "counters survive the restart");
    }

    #[test]
    #[should_panic(expected = "every cluster member is down")]
    fn all_members_down_panics_on_route() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::HashClient);
        cl.set_member_down(0);
        cl.set_member_down(1);
        let _ = cl.route(1, &key("a.com"));
    }
}
