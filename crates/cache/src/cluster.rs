//! The RDNS server cluster: several independent caches behind a
//! load-balancing strategy.

use serde::{Deserialize, Serialize};

use dnsnoise_dns::Timestamp;

use crate::lru::{CacheKey, CacheStats, TtlLru};
use crate::negative::NegativeCache;

/// How client queries are spread over the cluster's member caches.
///
/// §III-A: "for quality of service reasons (e.g., load balancing and fault
/// tolerance), the DNS queries from the ISP customers are served by a
/// cluster of RDNS servers". The paper's DHR/CHR measurements treat the
/// cluster as a black box with *multiple independent caches*; the strategy
/// determines how much each client's working set is split across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalance {
    /// Each client sticks to one cache (hash of the client id). Typical of
    /// anycast/DNS-VIP-per-subnet deployments.
    HashClient,
    /// Queries rotate over caches regardless of client — the worst case for
    /// cache locality.
    RoundRobin,
    /// The query name picks the cache, giving each cache a disjoint
    /// keyspace (best locality).
    HashName,
}

/// A cluster of [`TtlLru`] caches plus a shared [`NegativeCache`] per
/// member, routed by a [`LoadBalance`] strategy.
///
/// # Examples
///
/// ```
/// use dnsnoise_cache::{CacheCluster, CacheKey, InsertPriority, LoadBalance};
/// use dnsnoise_dns::{QType, RData, Record, Timestamp, Ttl};
/// use std::net::Ipv4Addr;
///
/// let mut cluster = CacheCluster::new(4, 1000, LoadBalance::HashClient);
/// let name: dnsnoise_dns::Name = "www.example.com".parse()?;
/// let key = CacheKey::new(name.clone(), QType::A);
/// let rr = Record::new(name, QType::A, Ttl::from_secs(60), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
///
/// let idx = cluster.route(7, &key);
/// assert!(cluster.cache_mut(idx).get(&key, Timestamp::ZERO).is_none());
/// cluster.cache_mut(idx).insert(key.clone(), vec![rr], Timestamp::ZERO, InsertPriority::Normal);
/// assert!(cluster.cache_mut(idx).get(&key, Timestamp::from_secs(1)).is_some());
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug)]
pub struct CacheCluster {
    caches: Vec<TtlLru>,
    negatives: Vec<NegativeCache>,
    strategy: LoadBalance,
    round_robin: usize,
}

fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CacheCluster {
    /// Builds a cluster of `members` caches with `capacity_each` entries
    /// per member and disabled negative caching (the monitored ISP's
    /// observed configuration).
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero or `capacity_each` is zero.
    pub fn new(members: usize, capacity_each: usize, strategy: LoadBalance) -> Self {
        assert!(members > 0, "cluster needs at least one member");
        CacheCluster {
            caches: (0..members).map(|_| TtlLru::new(capacity_each)).collect(),
            negatives: (0..members).map(|_| NegativeCache::disabled()).collect(),
            strategy,
            round_robin: 0,
        }
    }

    /// Replaces every member's negative cache (e.g. to model an RFC
    /// 2308-honouring deployment).
    pub fn set_negative_caches<F>(&mut self, mut make: F)
    where
        F: FnMut() -> NegativeCache,
    {
        for slot in &mut self.negatives {
            *slot = make();
        }
    }

    /// Number of member caches.
    pub fn members(&self) -> usize {
        self.caches.len()
    }

    /// The configured strategy.
    pub fn strategy(&self) -> LoadBalance {
        self.strategy
    }

    /// Picks the member cache that will serve this `(client, key)` pair.
    /// Round-robin advances internal state, so successive calls differ.
    pub fn route(&mut self, client: u64, key: &CacheKey) -> usize {
        let n = self.caches.len();
        match self.strategy {
            LoadBalance::HashClient => (fnv1a(client.to_le_bytes()) % n as u64) as usize,
            LoadBalance::RoundRobin => {
                let i = self.round_robin;
                self.round_robin = (self.round_robin + 1) % n;
                i
            }
            LoadBalance::HashName => {
                (fnv1a(key.name.to_string().bytes()) % n as u64) as usize
            }
        }
    }

    /// Mutable access to member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn cache_mut(&mut self, idx: usize) -> &mut TtlLru {
        &mut self.caches[idx]
    }

    /// Mutable access to the negative cache of member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn negative_mut(&mut self, idx: usize) -> &mut NegativeCache {
        &mut self.negatives[idx]
    }

    /// Sum of all member stats.
    pub fn total_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.caches {
            total.merge(c.stats());
        }
        total
    }

    /// Per-member stats snapshots.
    pub fn member_stats(&self) -> Vec<CacheStats> {
        self.caches.iter().map(|c| *c.stats()).collect()
    }

    /// Total entries across all members.
    pub fn len(&self) -> usize {
        self.caches.iter().map(TtlLru::len).sum()
    }

    /// Returns `true` if every member cache is empty.
    pub fn is_empty(&self) -> bool {
        self.caches.iter().all(TtlLru::is_empty)
    }

    /// Purges expired entries in every member; returns total removed.
    pub fn purge_expired(&mut self, now: Timestamp) -> usize {
        self.caches.iter_mut().map(|c| c.purge_expired(now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::InsertPriority;
    use dnsnoise_dns::{QType, RData, Record, Ttl};
    use std::net::Ipv4Addr;

    fn key(s: &str) -> CacheKey {
        CacheKey::new(s.parse().unwrap(), QType::A)
    }

    fn rr(s: &str, ttl: u32) -> Record {
        Record::new(s.parse().unwrap(), QType::A, Ttl::from_secs(ttl), RData::A(Ipv4Addr::new(192, 0, 2, 1)))
    }

    #[test]
    fn hash_client_is_sticky() {
        let mut cl = CacheCluster::new(4, 10, LoadBalance::HashClient);
        let k = key("a.com");
        let first = cl.route(42, &k);
        for _ in 0..10 {
            assert_eq!(cl.route(42, &k), first);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut cl = CacheCluster::new(3, 10, LoadBalance::RoundRobin);
        let k = key("a.com");
        let seq: Vec<usize> = (0..6).map(|_| cl.route(1, &k)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_name_is_client_independent() {
        let mut cl = CacheCluster::new(4, 10, LoadBalance::HashName);
        let k = key("a.com");
        let a = cl.route(1, &k);
        let b = cl.route(999, &k);
        assert_eq!(a, b);
    }

    #[test]
    fn independent_caches_do_not_share_entries() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::RoundRobin);
        let k = key("a.com");
        cl.cache_mut(0).insert(k.clone(), vec![rr("a.com", 100)], Timestamp::ZERO, InsertPriority::Normal);
        assert!(cl.cache_mut(0).get(&k, Timestamp::from_secs(1)).is_some());
        assert!(cl.cache_mut(1).get(&k, Timestamp::from_secs(1)).is_none());
    }

    #[test]
    fn total_stats_aggregates_members() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::RoundRobin);
        let k = key("a.com");
        let _ = cl.cache_mut(0).get(&k, Timestamp::ZERO); // miss
        let _ = cl.cache_mut(1).get(&k, Timestamp::ZERO); // miss
        assert_eq!(cl.total_stats().misses, 2);
        assert_eq!(cl.member_stats().len(), 2);
    }

    #[test]
    fn negative_cache_swap() {
        let mut cl = CacheCluster::new(2, 10, LoadBalance::HashClient);
        assert!(!cl.negative_mut(0).is_enabled());
        cl.set_negative_caches(|| NegativeCache::new(Ttl::from_secs(900)));
        assert!(cl.negative_mut(0).is_enabled());
        assert!(cl.negative_mut(1).is_enabled());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let _ = CacheCluster::new(0, 10, LoadBalance::HashClient);
    }
}
