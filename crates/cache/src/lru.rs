//! TTL-aware LRU record cache with priority classes and eviction accounting.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dnsnoise_dns::{Name, QType, Record, Timestamp, Ttl};

/// The cache lookup key: `(name, qtype)` — one cached answer set per
/// question, as a recursive resolver stores it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// The queried name.
    pub name: Name,
    /// The queried type.
    pub qtype: QType,
}

impl CacheKey {
    /// Convenience constructor.
    pub fn new(name: Name, qtype: QType) -> Self {
        CacheKey { name, qtype }
    }
}

/// Eviction priority class for an inserted answer.
///
/// [`InsertPriority::Low`] models the §VI-A mitigation: "disposable domains
/// could be treated with low priority". Low-priority entries are always
/// evicted before any normal-priority entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InsertPriority {
    /// Regular caching behaviour.
    Normal,
    /// Evict before all normal-priority entries.
    Low,
}

/// How an entry left the cache — used by the §VI-A pressure experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionKind {
    /// Removed by capacity pressure while its TTL was still live: the
    /// paper's *premature eviction*.
    Premature,
    /// Removed by capacity pressure after its TTL had already lapsed
    /// (harmless — it could not have served another hit).
    Expired,
}

/// Counters maintained by [`TtlLru`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that found no entry at all.
    pub misses: u64,
    /// Lookups that found an entry whose TTL had lapsed (counted as a miss
    /// as well).
    pub expired: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Capacity evictions of still-live normal-priority entries.
    pub premature_evictions_normal: u64,
    /// Capacity evictions of still-live low-priority entries.
    pub premature_evictions_low: u64,
    /// Capacity evictions of already-expired entries.
    pub expired_evictions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.expired
    }

    /// Overall hit rate in `[0, 1]`; `0` if no lookups were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total premature (still-live) evictions across both priorities.
    pub fn premature_evictions(&self) -> u64 {
        self.premature_evictions_normal + self.premature_evictions_low
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.expired += other.expired;
        self.inserts += other.inserts;
        self.premature_evictions_normal += other.premature_evictions_normal;
        self.premature_evictions_low += other.premature_evictions_low;
        self.expired_evictions += other.expired_evictions;
    }
}

/// Outcome of a staleness-aware lookup ([`TtlLru::lookup`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A live entry: its TTL has not lapsed.
    Fresh(Arc<[Record]>),
    /// The TTL has lapsed but the entry is still inside the serve-stale
    /// window (RFC 8767). The entry is *retained* so a later refresh can
    /// replace it in place; the lookup itself still counts as
    /// [`CacheStats::expired`] — staleness never inflates the hit rate.
    Stale(Arc<[Record]>),
    /// No usable entry.
    Absent,
}

#[derive(Debug)]
struct Entry {
    answers: Arc<[Record]>,
    expires: Timestamp,
    priority: InsertPriority,
    /// Recency stamp; larger is more recently used.
    stamp: u64,
}

/// A TTL-aware LRU cache of DNS answer sets with a fixed entry capacity.
///
/// Two recency indexes are kept — one per [`InsertPriority`] — so that
/// low-priority entries are always the first victims under capacity
/// pressure. Lookups on expired entries remove them and count as misses
/// ([`CacheStats::expired`]), matching resolver behaviour.
#[derive(Debug)]
pub struct TtlLru {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    /// Recency index per priority: ordered set of `(stamp, key)`.
    recency: [BTreeSet<(u64, CacheKey)>; 2],
    next_stamp: u64,
    stats: CacheStats,
}

fn prio_idx(p: InsertPriority) -> usize {
    match p {
        InsertPriority::Low => 0,
        InsertPriority::Normal => 1,
    }
}

impl TtlLru {
    /// Creates a cache holding at most `capacity` answer sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        TtlLru {
            capacity,
            map: HashMap::with_capacity(capacity),
            recency: [BTreeSet::new(), BTreeSet::new()],
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached entries (live or not-yet-collected expired).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the counters (the cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `key` at time `now`.
    ///
    /// A live entry refreshes its recency and returns its answers. An
    /// expired entry is removed and `None` is returned (counted in
    /// [`CacheStats::expired`]).
    pub fn get(&mut self, key: &CacheKey, now: Timestamp) -> Option<Arc<[Record]>> {
        match self.lookup(key, now, Ttl::ZERO) {
            Lookup::Fresh(answers) => Some(answers),
            Lookup::Stale(_) | Lookup::Absent => None,
        }
    }

    /// Staleness-aware lookup of `key` at time `now` (RFC 8767).
    ///
    /// A live entry behaves exactly as in [`TtlLru::get`]. An expired
    /// entry still counts as [`CacheStats::expired`], but when `now` is
    /// within `stale_window` past its expiry the entry is retained and its
    /// answers returned as [`Lookup::Stale`] for the resolver to fall back
    /// on if the refresh fails; beyond the window it is removed. A zero
    /// `stale_window` reproduces [`TtlLru::get`] exactly — state and
    /// counters included.
    pub fn lookup(&mut self, key: &CacheKey, now: Timestamp, stale_window: Ttl) -> Lookup {
        let Some(entry) = self.map.get(key) else {
            self.stats.misses += 1;
            return Lookup::Absent;
        };
        if entry.expires <= now {
            self.stats.expired += 1;
            if !stale_window.is_zero() && entry.expires + stale_window > now {
                // Within the window: keep the entry (recency untouched, so
                // a stale entry stays a likely eviction victim).
                return Lookup::Stale(Arc::clone(&entry.answers));
            }
            let entry = self.map.remove(key).expect("entry just observed");
            self.recency[prio_idx(entry.priority)].remove(&(entry.stamp, key.clone()));
            return Lookup::Absent;
        }
        self.stats.hits += 1;
        let stamp = self.bump_stamp();
        let entry = self.map.get_mut(key).expect("entry just observed");
        self.recency[prio_idx(entry.priority)].remove(&(entry.stamp, key.clone()));
        entry.stamp = stamp;
        self.recency[prio_idx(entry.priority)].insert((stamp, key.clone()));
        Lookup::Fresh(Arc::clone(&entry.answers))
    }

    /// Drops every entry while keeping the accumulated counters — a
    /// member process restarting with a cold cache after a crash.
    pub fn clear_entries(&mut self) {
        self.map.clear();
        self.recency = [BTreeSet::new(), BTreeSet::new()];
    }

    /// Inserts an answer set. The TTL of the entry is the minimum TTL of
    /// the supplied records (resolver semantics). Zero-TTL answers are not
    /// cached at all.
    ///
    /// Returns the evictions this insert caused, if any.
    pub fn insert(
        &mut self,
        key: CacheKey,
        answers: Vec<Record>,
        now: Timestamp,
        priority: InsertPriority,
    ) -> Vec<(CacheKey, EvictionKind)> {
        let ttl = answers.iter().map(|r| r.ttl).min().unwrap_or(Ttl::ZERO);
        if ttl.is_zero() {
            return Vec::new();
        }
        self.stats.inserts += 1;
        // Replace an existing entry in place.
        if let Some(old) = self.map.remove(&key) {
            self.recency[prio_idx(old.priority)].remove(&(old.stamp, key.clone()));
        }
        let mut evicted = Vec::new();
        while self.map.len() >= self.capacity {
            match self.evict_one(now) {
                Some(e) => evicted.push(e),
                None => break,
            }
        }
        let stamp = self.bump_stamp();
        self.recency[prio_idx(priority)].insert((stamp, key.clone()));
        self.map
            .insert(key, Entry { answers: answers.into(), expires: now + ttl, priority, stamp });
        evicted
    }

    /// Evicts the least recently used entry, preferring the low-priority
    /// class, and classifies the eviction.
    fn evict_one(&mut self, now: Timestamp) -> Option<(CacheKey, EvictionKind)> {
        for idx in 0..2 {
            let Some((stamp, key)) = self.recency[idx].iter().next().cloned() else {
                continue;
            };
            self.recency[idx].remove(&(stamp, key.clone()));
            let entry = self.map.remove(&key).expect("recency and map in sync");
            let kind = if entry.expires > now {
                match entry.priority {
                    InsertPriority::Normal => self.stats.premature_evictions_normal += 1,
                    InsertPriority::Low => self.stats.premature_evictions_low += 1,
                }
                EvictionKind::Premature
            } else {
                self.stats.expired_evictions += 1;
                EvictionKind::Expired
            };
            return Some((key, kind));
        }
        None
    }

    /// Drops every entry whose TTL has lapsed at `now`; returns how many
    /// were removed. Production resolvers do this lazily; the simulation
    /// exposes it so long runs don't count stale entries in [`len`].
    ///
    /// [`len`]: TtlLru::len
    pub fn purge_expired(&mut self, now: Timestamp) -> usize {
        // lint:allow(hash-iter): removal set; each key is removed independently, so order is moot
        let dead: Vec<CacheKey> =
            self.map.iter().filter(|(_, e)| e.expires <= now).map(|(k, _)| k.clone()).collect();
        for key in &dead {
            let entry = self.map.remove(key).expect("key collected above");
            self.recency[prio_idx(entry.priority)].remove(&(entry.stamp, key.clone()));
        }
        dead.len()
    }

    fn bump_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(s: &str) -> CacheKey {
        CacheKey::new(s.parse().unwrap(), QType::A)
    }

    fn rr(s: &str, ttl: u32) -> Record {
        Record::new(
            s.parse().unwrap(),
            QType::A,
            Ttl::from_secs(ttl),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        )
    }

    use dnsnoise_dns::RData;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let mut c = TtlLru::new(4);
        c.insert(key("a.com"), vec![rr("a.com", 10)], t(0), InsertPriority::Normal);
        assert!(c.get(&key("a.com"), t(9)).is_some());
        assert!(c.get(&key("a.com"), t(10)).is_none()); // expires <= now
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let mut c = TtlLru::new(4);
        let evicted = c.insert(key("a.com"), vec![rr("a.com", 0)], t(0), InsertPriority::Normal);
        assert!(evicted.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.get(&key("a.com"), t(0)).is_none());
    }

    #[test]
    fn min_ttl_of_answer_set_governs() {
        let mut c = TtlLru::new(4);
        c.insert(
            key("a.com"),
            vec![rr("a.com", 100), rr("b.com", 5)],
            t(0),
            InsertPriority::Normal,
        );
        assert!(c.get(&key("a.com"), t(4)).is_some());
        assert!(c.get(&key("a.com"), t(5)).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = TtlLru::new(2);
        c.insert(key("a.com"), vec![rr("a.com", 100)], t(0), InsertPriority::Normal);
        c.insert(key("b.com"), vec![rr("b.com", 100)], t(1), InsertPriority::Normal);
        // Touch a so that b is LRU.
        assert!(c.get(&key("a.com"), t(2)).is_some());
        let evicted = c.insert(key("c.com"), vec![rr("c.com", 100)], t(3), InsertPriority::Normal);
        assert_eq!(evicted, vec![(key("b.com"), EvictionKind::Premature)]);
        assert!(c.get(&key("a.com"), t(4)).is_some());
        assert!(c.get(&key("b.com"), t(4)).is_none());
    }

    #[test]
    fn eviction_of_expired_entry_is_not_premature() {
        let mut c = TtlLru::new(2);
        c.insert(key("a.com"), vec![rr("a.com", 1)], t(0), InsertPriority::Normal);
        c.insert(key("b.com"), vec![rr("b.com", 100)], t(0), InsertPriority::Normal);
        // a.com has expired by t(50); inserting c.com evicts it harmlessly.
        let evicted = c.insert(key("c.com"), vec![rr("c.com", 100)], t(50), InsertPriority::Normal);
        assert_eq!(evicted, vec![(key("a.com"), EvictionKind::Expired)]);
        assert_eq!(c.stats().expired_evictions, 1);
        assert_eq!(c.stats().premature_evictions(), 0);
    }

    #[test]
    fn low_priority_evicted_before_normal() {
        let mut c = TtlLru::new(2);
        c.insert(
            key("disposable.x.com"),
            vec![rr("disposable.x.com", 300)],
            t(0),
            InsertPriority::Low,
        );
        c.insert(key("stable.com"), vec![rr("stable.com", 300)], t(1), InsertPriority::Normal);
        // Even though the low-priority entry is *more* recently touched,
        // it is still the first victim.
        assert!(c.get(&key("disposable.x.com"), t(2)).is_some());
        let evicted =
            c.insert(key("new.com"), vec![rr("new.com", 300)], t(3), InsertPriority::Normal);
        assert_eq!(evicted, vec![(key("disposable.x.com"), EvictionKind::Premature)]);
        assert_eq!(c.stats().premature_evictions_low, 1);
        assert_eq!(c.stats().premature_evictions_normal, 0);
        assert!(c.get(&key("stable.com"), t(4)).is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = TtlLru::new(1);
        c.insert(key("a.com"), vec![rr("a.com", 10)], t(0), InsertPriority::Normal);
        let evicted = c.insert(key("a.com"), vec![rr("a.com", 50)], t(5), InsertPriority::Normal);
        assert!(evicted.is_empty());
        assert_eq!(c.len(), 1);
        // New TTL applies: live at t(30) (5 + 50 > 30).
        assert!(c.get(&key("a.com"), t(30)).is_some());
    }

    #[test]
    fn purge_expired_shrinks_len() {
        let mut c = TtlLru::new(8);
        for (i, ttl) in [1u32, 2, 100, 200].iter().enumerate() {
            c.insert(
                key(&format!("d{i}.com")),
                vec![rr("x.com", *ttl)],
                t(0),
                InsertPriority::Normal,
            );
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.purge_expired(t(50)), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = TtlLru::new(3);
        for i in 0..100 {
            c.insert(
                key(&format!("d{i}.com")),
                vec![rr("x.com", 1000)],
                t(i),
                InsertPriority::Normal,
            );
            assert!(c.len() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TtlLru::new(0);
    }

    #[test]
    fn stale_lookup_never_serves_past_the_window() {
        let mut c = TtlLru::new(4);
        c.insert(key("a.com"), vec![rr("a.com", 10)], t(0), InsertPriority::Normal);
        let w = Ttl::from_secs(5);
        assert!(matches!(c.lookup(&key("a.com"), t(9), w), Lookup::Fresh(_)));
        // Expired at t = 10; stale until (exclusive) 10 + 5.
        assert!(matches!(c.lookup(&key("a.com"), t(10), w), Lookup::Stale(_)));
        assert!(matches!(c.lookup(&key("a.com"), t(14), w), Lookup::Stale(_)));
        assert_eq!(c.len(), 1, "stale entry is retained for refresh");
        // One second past the window: removed, never served again.
        assert_eq!(c.lookup(&key("a.com"), t(15), w), Lookup::Absent);
        assert_eq!(c.len(), 0);
        assert_eq!(c.lookup(&key("a.com"), t(15), w), Lookup::Absent);
        // Every expired-entry touch counted as expired; the final lookup
        // found nothing at all.
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().expired, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn zero_window_lookup_is_exactly_get() {
        let mut via_get = TtlLru::new(2);
        let mut via_lookup = TtlLru::new(2);
        for cache in [&mut via_get, &mut via_lookup] {
            cache.insert(key("a.com"), vec![rr("a.com", 10)], t(0), InsertPriority::Normal);
            cache.insert(key("b.com"), vec![rr("b.com", 100)], t(1), InsertPriority::Normal);
        }
        for (k, now) in [("a.com", 5), ("a.com", 11), ("b.com", 11), ("c.com", 11)] {
            let got = via_get.get(&key(k), t(now));
            let looked = via_lookup.lookup(&key(k), t(now), Ttl::ZERO);
            match looked {
                Lookup::Fresh(a) => assert_eq!(got.as_deref(), Some(&*a)),
                Lookup::Absent => assert!(got.is_none()),
                Lookup::Stale(_) => panic!("zero window must never yield stale"),
            }
        }
        assert_eq!(via_get.stats(), via_lookup.stats());
        assert_eq!(via_get.len(), via_lookup.len());
    }

    #[test]
    fn clear_entries_keeps_counters() {
        let mut c = TtlLru::new(4);
        c.insert(key("a.com"), vec![rr("a.com", 100)], t(0), InsertPriority::Normal);
        assert!(c.get(&key("a.com"), t(1)).is_some());
        c.clear_entries();
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().hits, 1, "a cold restart must not reset accounting");
        assert_eq!(c.stats().inserts, 1);
        assert!(c.get(&key("a.com"), t(2)).is_none());
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = CacheStats { hits: 1, misses: 2, ..Default::default() };
        let b = CacheStats { hits: 10, expired: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 2);
        assert_eq!(a.expired, 5);
        assert_eq!(a.lookups(), 18);
    }

    #[test]
    fn hit_rate_bounds() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.hit_rate(), 0.75);
    }
}
