//! RFC 2308 negative caching.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dnsnoise_dns::{Name, Timestamp, Ttl};

/// A cached negative (NXDOMAIN) answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NegativeEntry {
    /// When the entry stops being served.
    pub expires: Timestamp,
}

/// A negative cache for NXDOMAIN responses.
///
/// The paper observes that the monitored resolvers were likely *not*
/// honouring RFC 2308 — NXDOMAIN made up ≈40% of traffic above the
/// recursives but only ≈6% below (§III-C1). The simulation therefore
/// supports a disabled mode ([`NegativeCache::disabled`]) in which every
/// lookup misses, so both behaviours can be reproduced and compared.
///
/// Negative entries are stored per *name* (not per type): an NXDOMAIN
/// asserts that no records of any type exist at the name.
///
/// # Examples
///
/// ```
/// use dnsnoise_cache::NegativeCache;
/// use dnsnoise_dns::{Timestamp, Ttl};
///
/// let mut neg = NegativeCache::new(Ttl::from_secs(900));
/// let name: dnsnoise_dns::Name = "no.such.example.com".parse()?;
/// let t0 = Timestamp::ZERO;
/// assert!(!neg.contains(&name, t0));
/// neg.insert(name.clone(), t0);
/// assert!(neg.contains(&name, t0 + Ttl::from_secs(899)));
/// assert!(!neg.contains(&name, t0 + Ttl::from_secs(900)));
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NegativeCache {
    ttl: Ttl,
    enabled: bool,
    entries: HashMap<Name, NegativeEntry>,
    hits: u64,
    misses: u64,
}

impl NegativeCache {
    /// Creates an enabled negative cache holding entries for `ttl`
    /// (the SOA MINIMUM-derived negative TTL of RFC 2308).
    pub fn new(ttl: Ttl) -> Self {
        NegativeCache { ttl, enabled: true, entries: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Creates a cache that never stores nor serves entries — the observed
    /// behaviour of the monitored ISP resolvers.
    pub fn disabled() -> Self {
        NegativeCache {
            ttl: Ttl::ZERO,
            enabled: false,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether negative answers are being cached at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an NXDOMAIN for `name` observed at `now`.
    pub fn insert(&mut self, name: Name, now: Timestamp) {
        if self.enabled && !self.ttl.is_zero() {
            self.entries.insert(name, NegativeEntry { expires: now + self.ttl });
        }
    }

    /// Returns `true` if a live negative entry covers `name` at `now`.
    /// Expired entries are removed on access.
    pub fn contains(&mut self, name: &Name, now: Timestamp) -> bool {
        if !self.enabled {
            self.misses += 1;
            return false;
        }
        match self.entries.get(name) {
            Some(e) if e.expires > now => {
                self.hits += 1;
                true
            }
            Some(_) => {
                self.entries.remove(name);
                self.misses += 1;
                false
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Drops every stored entry while keeping the hit/miss counters — the
    /// negative cache of a member restarting cold after a crash.
    pub fn clear_entries(&mut self) {
        self.entries.clear();
    }

    /// Number of stored entries (live or lazily uncollected).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the negative cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to go upstream.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut neg = NegativeCache::disabled();
        neg.insert(n("x.com"), t(0));
        assert!(!neg.contains(&n("x.com"), t(1)));
        assert_eq!(neg.len(), 0);
        assert!(!neg.is_enabled());
    }

    #[test]
    fn entry_expires_after_ttl() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        neg.insert(n("x.com"), t(0));
        assert!(neg.contains(&n("x.com"), t(9)));
        assert!(!neg.contains(&n("x.com"), t(10)));
        // Expired entry was removed on access.
        assert_eq!(neg.len(), 0);
    }

    #[test]
    fn hit_miss_counters() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        assert!(!neg.contains(&n("x.com"), t(0)));
        neg.insert(n("x.com"), t(0));
        assert!(neg.contains(&n("x.com"), t(1)));
        assert!(neg.contains(&n("x.com"), t(2)));
        assert_eq!(neg.hits(), 2);
        assert_eq!(neg.misses(), 1);
    }

    #[test]
    fn reinsert_refreshes_expiry() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        neg.insert(n("x.com"), t(0));
        neg.insert(n("x.com"), t(8));
        assert!(neg.contains(&n("x.com"), t(15)));
    }

    #[test]
    fn zero_ttl_cache_stores_nothing() {
        let mut neg = NegativeCache::new(Ttl::ZERO);
        neg.insert(n("x.com"), t(0));
        assert_eq!(neg.len(), 0);
        assert!(!neg.contains(&n("x.com"), t(0)));
    }
}
