//! RFC 2308 negative caching.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use dnsnoise_dns::{Name, Timestamp, Ttl};

/// A cached negative (NXDOMAIN) answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NegativeEntry {
    /// When the entry stops being served.
    pub expires: Timestamp,
}

/// A stored entry plus its recency stamp for LRU ordering.
#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: NegativeEntry,
    stamp: u64,
}

/// A negative cache for NXDOMAIN responses.
///
/// The paper observes that the monitored resolvers were likely *not*
/// honouring RFC 2308 — NXDOMAIN made up ≈40% of traffic above the
/// recursives but only ≈6% below (§III-C1). The simulation therefore
/// supports a disabled mode ([`NegativeCache::disabled`]) in which every
/// lookup misses, so both behaviours can be reproduced and compared.
///
/// Negative entries are stored per *name* (not per type): an NXDOMAIN
/// asserts that no records of any type exist at the name.
///
/// A capacity bound ([`NegativeCache::with_capacity`]) makes NXDOMAIN
/// floods pay an honest price: once full, the least-recently-touched
/// entry is evicted, so a random-subdomain storm churns the negative
/// cache instead of growing it without limit.
///
/// # Examples
///
/// ```
/// use dnsnoise_cache::NegativeCache;
/// use dnsnoise_dns::{Timestamp, Ttl};
///
/// let mut neg = NegativeCache::new(Ttl::from_secs(900));
/// let name: dnsnoise_dns::Name = "no.such.example.com".parse()?;
/// let t0 = Timestamp::ZERO;
/// assert!(!neg.contains(&name, t0));
/// neg.insert(name.clone(), t0);
/// assert!(neg.contains(&name, t0 + Ttl::from_secs(899)));
/// assert!(!neg.contains(&name, t0 + Ttl::from_secs(900)));
/// # Ok::<(), dnsnoise_dns::NameParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NegativeCache {
    ttl: Ttl,
    enabled: bool,
    capacity: usize,
    entries: HashMap<Name, Slot>,
    /// `(stamp, name)` pairs ordered oldest-first; the LRU victim is the
    /// smallest element. Mirrors [`crate::TtlLru`]'s recency index.
    recency: BTreeSet<(u64, Name)>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl NegativeCache {
    /// Creates an enabled negative cache holding entries for `ttl`
    /// (the SOA MINIMUM-derived negative TTL of RFC 2308), with no
    /// practical capacity bound.
    pub fn new(ttl: Ttl) -> Self {
        NegativeCache::with_capacity(ttl, usize::MAX)
    }

    /// Creates an enabled negative cache bounded to `capacity` entries,
    /// evicting least-recently-touched names once full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(ttl: Ttl, capacity: usize) -> Self {
        assert!(capacity > 0, "negative cache capacity must be positive");
        NegativeCache {
            ttl,
            enabled: true,
            capacity,
            entries: HashMap::new(),
            recency: BTreeSet::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates a cache that never stores nor serves entries — the observed
    /// behaviour of the monitored ISP resolvers.
    pub fn disabled() -> Self {
        NegativeCache {
            ttl: Ttl::ZERO,
            enabled: false,
            capacity: usize::MAX,
            entries: HashMap::new(),
            recency: BTreeSet::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Whether negative answers are being cached at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn bump(&mut self) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    /// Records an NXDOMAIN for `name` observed at `now`.
    pub fn insert(&mut self, name: Name, now: Timestamp) {
        if !self.enabled || self.ttl.is_zero() {
            return;
        }
        let stamp = self.bump();
        let entry = NegativeEntry { expires: now + self.ttl };
        if let Some(old) = self.entries.insert(name.clone(), Slot { entry, stamp }) {
            self.recency.remove(&(old.stamp, name.clone()));
        } else if self.entries.len() > self.capacity {
            // A brand-new name pushed us over the bound: evict the
            // least-recently-touched entry.
            if let Some((victim_stamp, victim)) = self.recency.iter().next().cloned() {
                self.recency.remove(&(victim_stamp, victim.clone()));
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.recency.insert((stamp, name));
    }

    /// Returns `true` if a live negative entry covers `name` at `now`.
    /// Expired entries are removed on access; a hit refreshes the entry's
    /// LRU recency.
    pub fn contains(&mut self, name: &Name, now: Timestamp) -> bool {
        if !self.enabled {
            self.misses += 1;
            return false;
        }
        match self.entries.get(name).copied() {
            Some(slot) if slot.entry.expires > now => {
                self.hits += 1;
                self.recency.remove(&(slot.stamp, name.clone()));
                let stamp = self.bump();
                self.recency.insert((stamp, name.clone()));
                if let Some(s) = self.entries.get_mut(name) {
                    s.stamp = stamp;
                }
                true
            }
            Some(slot) => {
                self.entries.remove(name);
                self.recency.remove(&(slot.stamp, name.clone()));
                self.misses += 1;
                false
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Drops every stored entry while keeping the hit/miss counters — the
    /// negative cache of a member restarting cold after a crash.
    pub fn clear_entries(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }

    /// Number of stored entries (live or lazily uncollected).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of the capacity bound currently occupied, in `[0, 1]`.
    /// Unbounded caches report an occupancy of zero.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == usize::MAX {
            return 0.0;
        }
        self.entries.len() as f64 / self.capacity as f64
    }

    /// The configured capacity bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the negative cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to go upstream.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to honour the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut neg = NegativeCache::disabled();
        neg.insert(n("x.com"), t(0));
        assert!(!neg.contains(&n("x.com"), t(1)));
        assert_eq!(neg.len(), 0);
        assert!(!neg.is_enabled());
    }

    #[test]
    fn entry_expires_after_ttl() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        neg.insert(n("x.com"), t(0));
        assert!(neg.contains(&n("x.com"), t(9)));
        assert!(!neg.contains(&n("x.com"), t(10)));
        // Expired entry was removed on access.
        assert_eq!(neg.len(), 0);
    }

    #[test]
    fn hit_miss_counters() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        assert!(!neg.contains(&n("x.com"), t(0)));
        neg.insert(n("x.com"), t(0));
        assert!(neg.contains(&n("x.com"), t(1)));
        assert!(neg.contains(&n("x.com"), t(2)));
        assert_eq!(neg.hits(), 2);
        assert_eq!(neg.misses(), 1);
    }

    #[test]
    fn reinsert_refreshes_expiry() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        neg.insert(n("x.com"), t(0));
        neg.insert(n("x.com"), t(8));
        assert!(neg.contains(&n("x.com"), t(15)));
    }

    #[test]
    fn zero_ttl_cache_stores_nothing() {
        let mut neg = NegativeCache::new(Ttl::ZERO);
        neg.insert(n("x.com"), t(0));
        assert_eq!(neg.len(), 0);
        assert!(!neg.contains(&n("x.com"), t(0)));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        // An NXDOMAIN burst against a bounded cache: the oldest untouched
        // name goes first, and a `contains` hit refreshes recency.
        let mut neg = NegativeCache::with_capacity(Ttl::from_secs(900), 3);
        neg.insert(n("a.example.com"), t(0));
        neg.insert(n("b.example.com"), t(1));
        neg.insert(n("c.example.com"), t(2));
        assert_eq!(neg.len(), 3);
        assert_eq!(neg.occupancy(), 1.0);

        // Touch `a` so `b` becomes the LRU victim.
        assert!(neg.contains(&n("a.example.com"), t(3)));
        neg.insert(n("d.example.com"), t(4));
        assert_eq!(neg.len(), 3);
        assert_eq!(neg.evictions(), 1);
        assert!(!neg.contains(&n("b.example.com"), t(5)), "LRU name b evicted");
        assert!(neg.contains(&n("a.example.com"), t(5)), "recently touched a kept");
        assert!(neg.contains(&n("c.example.com"), t(5)));
        assert!(neg.contains(&n("d.example.com"), t(5)));

        // Next new name evicts a: the probes above touched a, then c,
        // then d, so a is now the least recently used.
        neg.insert(n("e.example.com"), t(6));
        assert!(!neg.contains(&n("a.example.com"), t(7)));
        assert!(neg.contains(&n("c.example.com"), t(7)));
        assert!(neg.contains(&n("e.example.com"), t(7)));
        assert_eq!(neg.evictions(), 2);
    }

    #[test]
    fn burst_of_unique_names_churns_at_capacity() {
        let mut neg = NegativeCache::with_capacity(Ttl::from_secs(900), 8);
        for i in 0..100 {
            neg.insert(n(&format!("x{i}.flood.example.com")), t(i));
        }
        assert_eq!(neg.len(), 8);
        assert_eq!(neg.evictions(), 92);
        // The newest 8 names survived.
        for i in 92..100 {
            assert!(neg.contains(&n(&format!("x{i}.flood.example.com")), t(100)));
        }
        assert!(!neg.contains(&n("x0.flood.example.com"), t(100)));
    }

    #[test]
    fn unbounded_cache_reports_zero_occupancy() {
        let mut neg = NegativeCache::new(Ttl::from_secs(10));
        neg.insert(n("x.com"), t(0));
        assert_eq!(neg.occupancy(), 0.0);
        assert_eq!(neg.capacity(), usize::MAX);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut neg = NegativeCache::with_capacity(Ttl::from_secs(900), 2);
        neg.insert(n("a.com"), t(0));
        neg.insert(n("b.com"), t(1));
        neg.insert(n("a.com"), t(2));
        assert_eq!(neg.len(), 2);
        assert_eq!(neg.evictions(), 0);
        assert!(neg.contains(&n("b.com"), t(3)));
    }

    #[test]
    fn clear_entries_resets_recency() {
        let mut neg = NegativeCache::with_capacity(Ttl::from_secs(900), 2);
        neg.insert(n("a.com"), t(0));
        neg.insert(n("b.com"), t(1));
        neg.clear_entries();
        assert!(neg.is_empty());
        neg.insert(n("c.com"), t(2));
        neg.insert(n("d.com"), t(3));
        neg.insert(n("e.com"), t(4));
        assert_eq!(neg.len(), 2);
        assert!(!neg.contains(&n("c.com"), t(5)));
    }
}
