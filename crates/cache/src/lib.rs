//! Recursive-resolver caching for the `dnsnoise` workspace.
//!
//! The paper measures a production RDNS cluster as a black box; this crate
//! provides the white-box equivalent the simulation runs on:
//!
//! * [`TtlLru`] — a TTL-aware least-recently-used record cache with
//!   capacity-based eviction and *premature eviction* accounting (evicting a
//!   record whose TTL had not yet expired — the §VI-A failure mode caused by
//!   disposable-domain pressure).
//! * [`InsertPriority`] — the paper's proposed mitigation of caching
//!   disposable records with low priority, modelled as a two-class eviction
//!   order.
//! * [`NegativeCache`] — RFC 2308 negative caching, which the monitored ISP
//!   resolvers were observed *not* to honour (fpDNS NXDOMAIN volume above the
//!   recursives was ≈40%); honouring is therefore configurable.
//! * [`CacheCluster`] — the "cluster of RDNS servers" of §III-A: several
//!   independent caches behind a load-balancing strategy.
//!
//! # Examples
//!
//! ```
//! use dnsnoise_cache::{CacheKey, InsertPriority, TtlLru};
//! use dnsnoise_dns::{QType, RData, Record, Timestamp, Ttl};
//! use std::net::Ipv4Addr;
//!
//! let mut cache = TtlLru::new(2);
//! let name: dnsnoise_dns::Name = "www.example.com".parse()?;
//! let rr = Record::new(name.clone(), QType::A, Ttl::from_secs(60), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
//! let key = CacheKey::new(name, QType::A);
//! let t0 = Timestamp::ZERO;
//!
//! assert!(cache.get(&key, t0).is_none());
//! cache.insert(key.clone(), vec![rr], t0, InsertPriority::Normal);
//! assert!(cache.get(&key, t0 + Ttl::from_secs(30)).is_some()); // within TTL
//! assert!(cache.get(&key, t0 + Ttl::from_secs(61)).is_none()); // expired
//! # Ok::<(), dnsnoise_dns::NameParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod cluster;
mod lru;
mod negative;

pub use cluster::{CacheCluster, LoadBalance, MemberShard};
pub use lru::{CacheKey, CacheStats, EvictionKind, InsertPriority, Lookup, TtlLru};
pub use negative::{NegativeCache, NegativeEntry};
