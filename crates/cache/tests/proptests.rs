//! Property-based tests for the TTL-LRU cache invariants.

use dnsnoise_cache::{CacheKey, InsertPriority, TtlLru};
use dnsnoise_dns::{QType, RData, Record, Timestamp, Ttl};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
enum Op {
    Get { key: u8, at: u64 },
    Insert { key: u8, ttl: u32, at: u64, low: bool },
    Purge { at: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u64..1_000).prop_map(|(key, at)| Op::Get { key, at }),
        (any::<u8>(), 0u32..200, 0u64..1_000, any::<bool>())
            .prop_map(|(key, ttl, at, low)| Op::Insert { key, ttl, at, low }),
        (0u64..1_000).prop_map(|at| Op::Purge { at }),
    ]
}

fn key(i: u8) -> CacheKey {
    CacheKey::new(format!("d{i}.example.com").parse().unwrap(), QType::A)
}

fn rr(i: u8, ttl: u32) -> Record {
    Record::new(
        format!("d{i}.example.com").parse().unwrap(),
        QType::A,
        Ttl::from_secs(ttl),
        RData::A(Ipv4Addr::new(10, 0, 0, i)),
    )
}

proptest! {
    /// Capacity is never exceeded, regardless of operation sequence.
    #[test]
    fn capacity_invariant(cap in 1usize..16, ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut cache = TtlLru::new(cap);
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Get { key: k, at } => {
                    now = now.max(at);
                    let _ = cache.get(&key(k), Timestamp::from_secs(now));
                }
                Op::Insert { key: k, ttl, at, low } => {
                    now = now.max(at);
                    let prio = if low { InsertPriority::Low } else { InsertPriority::Normal };
                    cache.insert(key(k), vec![rr(k, ttl)], Timestamp::from_secs(now), prio);
                }
                Op::Purge { at } => {
                    now = now.max(at);
                    cache.purge_expired(Timestamp::from_secs(now));
                }
            }
            prop_assert!(cache.len() <= cap);
        }
    }

    /// A get never returns answers whose entry TTL has lapsed: an oracle
    /// tracking (insert time + ttl) agrees on every "hit after expiry is
    /// impossible" claim.
    #[test]
    fn never_serves_expired(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut cache = TtlLru::new(64);
        let mut expiry_oracle: HashMap<u8, u64> = HashMap::new();
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Get { key: k, at } => {
                    now = now.max(at);
                    let got = cache.get(&key(k), Timestamp::from_secs(now));
                    if got.is_some() {
                        let exp = expiry_oracle.get(&k).copied().unwrap_or(0);
                        prop_assert!(exp > now, "served entry past its expiry");
                    }
                }
                Op::Insert { key: k, ttl, at, low } => {
                    now = now.max(at);
                    let prio = if low { InsertPriority::Low } else { InsertPriority::Normal };
                    cache.insert(key(k), vec![rr(k, ttl)], Timestamp::from_secs(now), prio);
                    if ttl > 0 {
                        expiry_oracle.insert(k, now + u64::from(ttl));
                    }
                }
                Op::Purge { at } => {
                    now = now.max(at);
                    cache.purge_expired(Timestamp::from_secs(now));
                }
            }
        }
    }

    /// Hit + miss + expired accounting always equals the number of gets.
    #[test]
    fn lookup_accounting_conserved(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut cache = TtlLru::new(8);
        let mut gets = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Get { key: k, at } => {
                    now = now.max(at);
                    let _ = cache.get(&key(k), Timestamp::from_secs(now));
                    gets += 1;
                }
                Op::Insert { key: k, ttl, at, low } => {
                    now = now.max(at);
                    let prio = if low { InsertPriority::Low } else { InsertPriority::Normal };
                    cache.insert(key(k), vec![rr(k, ttl)], Timestamp::from_secs(now), prio);
                }
                Op::Purge { at } => {
                    now = now.max(at);
                    cache.purge_expired(Timestamp::from_secs(now));
                }
            }
        }
        prop_assert_eq!(cache.stats().lookups(), gets);
    }

    /// With mixed priorities under pressure, no normal-priority entry is
    /// prematurely evicted while a live low-priority entry remains cached.
    #[test]
    fn low_priority_shields_normal(n_low in 1usize..10, n_normal in 1usize..10) {
        let cap = n_low + n_normal; // exactly full
        let mut cache = TtlLru::new(cap);
        let t0 = Timestamp::ZERO;
        for i in 0..n_low {
            cache.insert(key(i as u8), vec![rr(i as u8, 10_000)], t0, InsertPriority::Low);
        }
        for i in 0..n_normal {
            let k = 100 + i as u8;
            cache.insert(key(k), vec![rr(k, 10_000)], t0, InsertPriority::Normal);
        }
        // Push `n_low` more normal entries: every eviction must hit the
        // low-priority class first.
        for i in 0..n_low {
            let k = 200 + i as u8;
            cache.insert(key(k), vec![rr(k, 10_000)], t0, InsertPriority::Normal);
        }
        prop_assert_eq!(cache.stats().premature_evictions_low, n_low as u64);
        prop_assert_eq!(cache.stats().premature_evictions_normal, 0);
    }
}
