//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! subset of the `rand` 0.8 API the workspace uses — `StdRng` (here a
//! xoshiro256++ generator seeded via SplitMix64), `SeedableRng`, `Rng`
//! (`gen`, `gen_range`, `gen_bool`) and `seq::SliceRandom::shuffle`/
//! `choose`. Streams are deterministic per seed but differ from upstream
//! `rand`'s ChaCha12-based `StdRng`; the workspace only relies on
//! determinism and statistical quality, never on exact upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {
        $(impl StandardSample for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire's widening
/// multiply with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let wide = u128::from(x) * u128::from(bound);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Types with a uniform sampler over an interval. The blanket
/// [`SampleRange`] impls below are deliberately generic over this trait
/// (mirroring upstream rand) so integer-literal ranges infer their type
/// from the call site instead of defaulting to `i32`.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_single<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self;

    /// Uniform sample in `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {
        $(
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample from empty range");
                    let span = (*high as u64).wrapping_sub(*low as u64);
                    low.wrapping_add(uniform_below(rng, span) as $ty)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: &Self,
                    high: &Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "cannot sample from empty range");
                    let span = (*high as u64).wrapping_sub(*low as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width u64 range: every word is a valid sample.
                        return rng.next_u64() as $ty;
                    }
                    low.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }
        )*
    };
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {
        $(
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: &Self, high: &Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample from empty range");
                    low + (high - low) * <$ty>::sample(rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: &Self,
                    high: &Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "cannot sample from empty range");
                    low + (high - low) * <$ty>::sample(rng)
                }
            }
        )*
    };
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(&self.start, &self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(self.start(), self.end(), rng)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed; not upstream `rand`'s ChaCha12 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Items most users want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples never reached the interval edges");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "got {heads}");
    }
}
