//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be fetched. Nothing in
//! this workspace ever *serializes* — the derives exist so the data model
//! keeps the upstream-compatible `#[derive(Serialize, Deserialize)]`
//! annotations. This crate therefore parses just enough of the item to
//! find its name and emits marker-trait impls; all `#[serde(...)]`
//! attributes are accepted and ignored.
//!
//! Swapping the workspace back to the real serde requires no source
//! changes outside `Cargo.toml`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the `struct`/`enum`/`union` keyword.
///
/// Attributes (including doc comments) arrive as `#` punct + bracketed
/// group tokens, so their contents can never be mistaken for the keyword
/// at this nesting level.
fn item_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(word) = &tt {
            let word = word.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Derives a `serde::Serialize` impl whose body reports the stub error.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input).expect("derive target must be a struct, enum, or union");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \x20   fn serialize<S: ::serde::Serializer>(&self, _serializer: S)\n\
         \x20       -> ::core::result::Result<S::Ok, S::Error> {{\n\
         \x20       Err(<S::Error as ::serde::ser::Error>::custom(\n\
         \x20           \"serde stub: derived serialization is not implemented\"))\n\
         \x20   }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives a `serde::Deserialize` impl whose body reports the stub error.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input).expect("derive target must be a struct, enum, or union");
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         \x20   fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
         \x20       -> ::core::result::Result<Self, D::Error> {{\n\
         \x20       Err(<D::Error as ::serde::de::Error>::custom(\n\
         \x20           \"serde stub: derived deserialization is not implemented\"))\n\
         \x20   }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}
