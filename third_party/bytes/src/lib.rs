//! Offline stand-in for `bytes` 1.x.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! subset of the `bytes` API the workspace uses: big-endian reads via
//! [`Buf`] on byte slices, big-endian writes via [`BufMut`] on
//! [`BytesMut`], and the `BytesMut::freeze` → [`Bytes`] handoff. Both
//! buffer types are plain `Vec<u8>` wrappers — no shared-arc storage,
//! which the workspace never relies on.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a buffer of bytes, big-endian.
pub trait Buf {
    /// Number of bytes left.
    fn remaining(&self) -> usize;

    /// Reads one byte and advances.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (as in upstream `bytes`).
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u16` and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16;

    /// Reads a big-endian `u32` and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_be_bytes(head.try_into().expect("2-byte slice"))
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("4-byte slice"))
    }
}

/// Write access to a growable buffer, big-endian.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.put_u8(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.put_u16(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.put_u32(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.put_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: data.to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_through_freeze() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_slice(b"xy");
        let frozen: Bytes = buf.freeze();
        assert_eq!(&frozen[..], &[0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef, b'x', b'y']);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn bytes_mut_allows_in_place_patching() {
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf.put_u8(7);
        buf[0..2].copy_from_slice(&9u16.to_be_bytes());
        assert_eq!(&buf[..], &[0, 9, 7]);
    }
}
