//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data model with serde derives for
//! upstream compatibility but never runs a serializer (there is no
//! format crate in the dependency tree). With no network access to fetch
//! the real `serde`, this crate mirrors the trait *shapes* —
//! `Serialize`/`Serializer`, `Deserialize`/`Deserializer`, and the
//! `ser::Error`/`de::Error` traits — so both derived and hand-written
//! impls compile unchanged. Any attempt to actually drive these traits
//! through a data format returns an "unimplemented" error, which no code
//! path in this workspace does. The derive macros live in the sibling
//! `serde_derive` stand-in.

#![forbid(unsafe_code)]

use std::fmt;

/// Serialization-side error support.
pub mod ser {
    use std::fmt;

    /// Errors a [`Serializer`](crate::Serializer) can produce.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support.
pub mod de {
    use std::fmt;

    /// Errors a [`Deserializer`](crate::Deserializer) can produce.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize values (stub: strings only).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;

    /// Serializes the `Display` form of `value`.
    fn collect_str<T: ?Sized + fmt::Display>(self, value: &T) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can deserialize values (stub: strings only).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Deserializes an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error> {
        Err(de::Error::custom("serde stub: deserialization is not implemented"))
    }
}

/// Types that can hand themselves to a [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types that can be built from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value of this type.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// `Display`-backed impls: these genuinely serialize via `collect_str`.
macro_rules! impl_via_display {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.collect_str(self)
                }
            }

            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    let s = deserializer.deserialize_string()?;
                    s.parse().map_err(|_| de::Error::custom("serde stub: parse failed"))
                }
            }
        )*
    };
}

impl_via_display!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    std::net::Ipv4Addr,
    std::net::Ipv6Addr,
    std::net::IpAddr,
);

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

/// Container impls exist for bound-satisfaction only; driving them
/// returns the stub error (no format crate ever does in this workspace).
macro_rules! unimplemented_serialize_body {
    () => {
        fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
            Err(ser::Error::custom("serde stub: container serialization is not implemented"))
        }
    };
}

macro_rules! unimplemented_deserialize_body {
    () => {
        fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
            Err(de::Error::custom("serde stub: container deserialization is not implemented"))
        }
    };
}

impl<T: Serialize> Serialize for Vec<T> {
    unimplemented_serialize_body!();
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    unimplemented_deserialize_body!();
}
impl<T: Serialize> Serialize for Option<T> {
    unimplemented_serialize_body!();
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    unimplemented_deserialize_body!();
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    unimplemented_serialize_body!();
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    unimplemented_deserialize_body!();
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    unimplemented_serialize_body!();
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    unimplemented_deserialize_body!();
}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    unimplemented_serialize_body!();
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    unimplemented_deserialize_body!();
}
impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    unimplemented_serialize_body!();
}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, H: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, H>
{
    unimplemented_deserialize_body!();
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    unimplemented_serialize_body!();
}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    unimplemented_deserialize_body!();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serializer that renders everything through `Display`.
    struct StringSerializer;

    #[derive(Debug)]
    struct StringError(String);

    impl fmt::Display for StringError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl ser::Error for StringError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            StringError(msg.to_string())
        }
    }

    impl de::Error for StringError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            StringError(msg.to_string())
        }
    }

    impl Serializer for StringSerializer {
        type Ok = String;
        type Error = StringError;

        fn collect_str<T: ?Sized + fmt::Display>(self, value: &T) -> Result<String, StringError> {
            Ok(value.to_string())
        }
    }

    struct StrDeserializer(&'static str);

    impl<'de> Deserializer<'de> for StrDeserializer {
        type Error = StringError;

        fn deserialize_string(self) -> Result<String, StringError> {
            Ok(self.0.to_string())
        }
    }

    #[test]
    fn display_types_round_trip_through_the_string_model() {
        assert_eq!(42u32.serialize(StringSerializer).unwrap(), "42");
        let back = u32::deserialize(StrDeserializer("42")).unwrap();
        assert_eq!(back, 42);
    }

    #[test]
    fn containers_fail_loudly_instead_of_silently() {
        let err = vec![1u8].serialize(StringSerializer).unwrap_err();
        assert!(err.0.contains("not implemented"));
    }
}
