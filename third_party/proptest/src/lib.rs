//! Offline stand-in for `proptest` 1.x.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! subset of the proptest API the workspace uses: the [`proptest!`] macro,
//! `prop_assert*`/`prop_assume!`, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`]/`Just`/`any`, `collection::vec` and
//! `string::string_regex`. Cases are generated from a deterministic
//! per-test seed and checked without shrinking — a failure reports the
//! case number so it can be replayed (generation is deterministic), which
//! is cruder than upstream shrinking but sufficient for CI.

#![forbid(unsafe_code)]

/// Test-case execution: config, error type, and the deterministic runner.
pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// Deterministic RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is discarded, not a failure.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection (assume) variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure. Each attempt's RNG is seeded from the test name and the
    /// attempt index, so runs are reproducible.
    pub fn run(config: &ProptestConfig, name: &str, case: impl Fn(&mut TestRng) -> TestCaseResult) {
        let base = fnv1a(name.as_bytes());
        let mut successes = 0u32;
        let mut attempt = 0u64;
        let max_attempts = u64::from(config.cases) * 16 + 1_000;
        while successes < config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest '{name}': too many prop_assume! rejections \
                     ({attempt} attempts for {successes}/{} cases)",
                    config.cases
                );
            }
            let mut rng = StdRng::seed_from_u64(base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at attempt {attempt}: {msg}")
                }
            }
            attempt += 1;
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives ([`prop_oneof!`] backend).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy for [`Union`]; used by the `prop_oneof!` expansion.
    pub fn union_box<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }

                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+);)*) => {
            $(
                #[allow(non_snake_case)]
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);

                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($s,)+) = self;
                        ($($s.generate(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {
            $(impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            })*
        };
    }

    impl_arbitrary_int!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.gen();
            }
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct ArbitraryStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy over all values of `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty proptest vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Regex-shaped string strategies.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt;

    /// Regex-parse failure.
    #[derive(Debug)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex AST node plus its repetition bounds (inclusive).
    #[derive(Debug, Clone)]
    struct Node {
        kind: Kind,
        min: u32,
        max: u32,
    }

    #[derive(Debug, Clone)]
    enum Kind {
        Literal(char),
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
    }

    /// Strategy returned by [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        nodes: Vec<Node>,
    }

    /// Builds a generator for the regex subset used in this workspace:
    /// literals, `\x` escapes, `[...]` classes with ranges, `(...)`
    /// groups, and the `{n}`/`{m,n}`/`?`/`*`/`+` quantifiers (the
    /// unbounded forms are capped at 8 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_seq(&mut chars, false)?;
        if chars.next().is_some() {
            return Err(Error(format!("unbalanced ')' in {pattern:?}")));
        }
        Ok(RegexGeneratorStrategy { nodes })
    }

    type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

    fn parse_seq(chars: &mut Chars<'_>, in_group: bool) -> Result<Vec<Node>, Error> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            let kind = match c {
                ')' if in_group => break,
                ')' => return Err(Error("unbalanced ')'".into())),
                '(' => {
                    chars.next();
                    let inner = parse_seq(chars, true)?;
                    if chars.next() != Some(')') {
                        return Err(Error("unterminated group".into()));
                    }
                    Kind::Group(inner)
                }
                '[' => {
                    chars.next();
                    Kind::Class(parse_class(chars)?)
                }
                '\\' => {
                    chars.next();
                    let escaped = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    Kind::Literal(escaped)
                }
                '{' | '}' | '?' | '*' | '+' => {
                    return Err(Error(format!("quantifier '{c}' with nothing to repeat")))
                }
                _ => {
                    chars.next();
                    Kind::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(chars)?;
            nodes.push(Node { kind, min, max });
        }
        Ok(nodes)
    }

    fn parse_class(chars: &mut Chars<'_>) -> Result<Vec<(char, char)>, Error> {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated class".into()))?;
            match c {
                ']' => break,
                '\\' => {
                    let escaped = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    ranges.push((escaped, escaped));
                }
                _ => {
                    // `a-z` is a range unless the '-' is last in the class.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(|&end| end != ']') {
                            chars.next();
                            let end = chars.next().expect("peeked end of range");
                            if end < c {
                                return Err(Error(format!("inverted range {c}-{end}")));
                            }
                            ranges.push((c, end));
                            continue;
                        }
                    }
                    ranges.push((c, c));
                }
            }
        }
        if ranges.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(ranges)
    }

    /// Cap for the unbounded `*`/`+` quantifiers.
    const UNBOUNDED_CAP: u32 = 8;

    fn parse_quantifier(chars: &mut Chars<'_>) -> Result<(u32, u32), Error> {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            Some('*') => {
                chars.next();
                Ok((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                chars.next();
                Ok((1, UNBOUNDED_CAP))
            }
            Some('{') => {
                chars.next();
                let mut body = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => body.push(c),
                        None => return Err(Error("unterminated quantifier".into())),
                    }
                }
                let parse = |s: &str| {
                    s.trim().parse::<u32>().map_err(|_| Error(format!("bad quantifier {{{body}}}")))
                };
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let n = parse(&body)?;
                        (n, n)
                    }
                };
                if min > max {
                    return Err(Error(format!("inverted quantifier {{{body}}}")));
                }
                Ok((min, max))
            }
            _ => Ok((1, 1)),
        }
    }

    fn generate_nodes(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            let reps = rng.gen_range(node.min..=node.max);
            for _ in 0..reps {
                match &node.kind {
                    Kind::Literal(c) => out.push(*c),
                    Kind::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        let c = char::from_u32(lo as u32 + rng.gen_range(0..span))
                            .expect("class ranges stay inside valid scalar values");
                        out.push(c);
                    }
                    Kind::Group(inner) => generate_nodes(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            generate_nodes(&self.nodes, rng, &mut out);
            out
        }
    }
}

/// Runs each embedded `fn name(args in strategies) { body }` as a
/// property test over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    outcome
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assume failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_box($strat)),+])
    };
}

/// The items most tests want in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = rng();
        let strat = crate::string::string_regex("[a-z0-9]{1,8}(\\.[a-z0-9]{1,8}){1,4}").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            let parts: Vec<&str> = s.split('.').collect();
            assert!(
                (2..=5).contains(&parts.len()),
                "{s:?} has {} dot-separated parts",
                parts.len()
            );
            for p in parts {
                assert!((1..=8).contains(&p.len()), "{s:?}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
            }
        }
    }

    #[test]
    fn class_with_trailing_dash_is_literal() {
        let mut rng = rng();
        let strat = crate::string::string_regex("[a-z0-9_-]{1,16}").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn printable_ascii_class_spans_the_range() {
        let mut rng = rng();
        let strat = crate::string::string_regex("[ -~]{1,40}").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=40).contains(&s.len()));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u32), 2u32..10, (10u32..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (2..10).contains(&v) || (20..40).contains(&v), "got {v}");
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn assume_discards_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
