//! Offline stand-in for `criterion` 0.5.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! subset of the criterion API the workspace's benches use: `Criterion`
//! with `bench_function`/`benchmark_group`, `Bencher::iter`/
//! `iter_batched`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a simple wall-clock mean over
//! a fixed iteration budget — enough to smoke-run the benches and print
//! comparable numbers, with none of upstream's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Re-export for callers that use `criterion::black_box`.
pub use std::hint::black_box;

/// Times closures handed to it by a benchmark target.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` over fresh `setup` outputs (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_target(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass, then the measured pass.
    let mut warmup = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warmup);
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    println!("{label:<48} {:>12.3} µs/iter  ({iters} iters)", mean * 1e6);
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark target.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_target(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmark targets.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of targets with its own sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one target inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_target(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("stub/count", |b| b.iter(|| calls += 1));
        // One warm-up iteration plus the measured budget.
        assert!(calls > 1, "routine ran {calls} times");
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut inputs = Vec::new();
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(5).bench_function("batched", |b| {
            let mut i = 0u32;
            b.iter_batched(
                || {
                    i += 1;
                    i
                },
                |v| inputs.push(v),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert!(!inputs.is_empty());
    }
}
