//! §VI-A what-if: how disposable domains pressure a resolver cache, and
//! how the paper's "treat disposables with low priority" policy helps.
//!
//! Sweeps cache capacity under the same day of traffic with and without
//! the mitigation and prints premature-eviction and upstream-traffic
//! numbers.
//!
//! ```text
//! cargo run --release --example cache_pressure
//! ```

use std::sync::Arc;

use dnsnoise::resolver::{ResolverSim, SimConfig};
use dnsnoise::workload::{Scenario, ScenarioConfig};

fn main() {
    let scenario = Scenario::new(
        ScenarioConfig::paper_epoch(1.0).with_scale(0.05).with_events_per_unique(250.0),
        7,
    );
    let gt = Arc::new(scenario.ground_truth().clone());
    let trace = scenario.generate_day(0);
    println!("{} responses, {} clients\n", trace.events.len(), scenario.config().n_clients);

    println!("capacity | policy                  | premature evictions (normal/low) | hit rate | above traffic");
    println!("---------|-------------------------|----------------------------------|----------|--------------");
    for capacity in [300usize, 1_000, 3_000, 10_000] {
        for mitigated in [false, true] {
            let mut config =
                SimConfig { members: 2, capacity_each: capacity, ..SimConfig::default() };
            if mitigated {
                let gt = Arc::clone(&gt);
                config = config.with_low_priority(move |name| gt.is_disposable_name(name));
            }
            let mut sim = ResolverSim::new(config);
            let report = sim.day(&trace).ground_truth(scenario.ground_truth()).run();
            println!(
                "{:>8} | {:<23} | {:>15} / {:<14} | {:>7.1}% | {:>13}",
                capacity,
                if mitigated { "low-priority-disposable" } else { "plain LRU" },
                report.cache.premature_evictions_normal,
                report.cache.premature_evictions_low,
                report.cache.hit_rate() * 100.0,
                report.above_total,
            );
        }
    }

    println!("\nreading: under pressure (small capacities), the mitigation shifts premature");
    println!("evictions from the non-disposable working set (normal) onto disposable");
    println!("entries (low), protecting cache hit rates for real sites.");
}
