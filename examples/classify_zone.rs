//! Classify hand-built zone snapshots with a trained miner.
//!
//! Trains the LAD-tree classifier on a synthetic labeled day, then scores
//! three hand-constructed zone snapshots: a McAfee-style file-reputation
//! zone, an eSoft-style telemetry zone, and an ordinary popular site —
//! showing how the public API applies to data a user brings themselves
//! (e.g. parsed from their own passive-DNS logs).
//!
//! ```text
//! cargo run --release --example classify_zone
//! ```

use dnsnoise::core::{DomainTree, GroupFeatures, Miner, MinerConfig, TrainingSetBuilder};
use dnsnoise::dns::Name;
use dnsnoise::resolver::{ResolverSim, SimConfig};
use dnsnoise::workload::{label_base32, Scenario, ScenarioConfig};

/// Builds a snapshot tree for a zone from `(name, dhr, misses)` rows, the
/// per-record statistics a passive-DNS operator already has.
fn snapshot(rows: &[(String, f64, u32)]) -> DomainTree {
    let mut tree = DomainTree::new();
    for (name, dhr, misses) in rows {
        let name: Name = name.parse().expect("valid name");
        tree.observe(&name, *dhr, *misses);
    }
    tree
}

fn score_zone(miner: &Miner, tree: &DomainTree, zone: &str) {
    let zone: Name = zone.parse().expect("valid zone");
    let Some(groups) = tree.groups_under(&zone) else {
        println!("  {zone}: no observations");
        return;
    };
    for (depth, group) in &groups.groups {
        let features = GroupFeatures::compute(tree, group);
        let p = miner.score(&features);
        println!(
            "  {zone} depth {depth}: {} names, |L|={}, entropy μ={:.2}, CHR₀={:.0}%  →  P(disposable) = {p:.3}",
            group.members.len(),
            features.cardinality,
            features.entropy_mean,
            features.chr_zero_fraction * 100.0,
        );
    }
}

fn main() {
    // Train on one synthetic labeled day (the paper's 398/401 protocol).
    let scenario = Scenario::new(ScenarioConfig::paper_epoch(1.0).with_scale(0.5), 11);
    let trace = scenario.generate_day(0);
    let mut sim = ResolverSim::new(SimConfig::default());
    let report = sim.day(&trace).ground_truth(scenario.ground_truth()).run();
    let tree = DomainTree::from_day_stats(&report.rr_stats);
    let labeled = TrainingSetBuilder { min_disposable_names: 8, ..Default::default() }
        .build(&tree, scenario.ground_truth());
    println!(
        "trained on {} disposable / {} non-disposable zones\n",
        labeled.positives(),
        labeled.len() - labeled.positives()
    );
    let miner = Miner::train(&labeled, MinerConfig::default());

    // 1. A file-reputation zone: one-shot hash children.
    let av: Vec<(String, f64, u32)> = (0..40u64)
        .map(|i| (format!("0.0.0.0.1.0.0.4e.{}.avqs.mcafee.com", label_base32(i, 26)), 0.0, 1))
        .collect();
    println!("McAfee-style file reputation zone:");
    score_zone(&miner, &snapshot(&av), "avqs.mcafee.com");

    // 2. A telemetry zone: metric-bearing one-shot names.
    let telemetry: Vec<(String, f64, u32)> = (0..30u64)
        .map(|i| {
            (
                format!(
                    "load-0-p-{:02}.up-{}.mem-{}-{}-0-p-{:02}.swap-{}-{}-0-p-{:02}.330{}.12220{}.device.trans.manage.esoft.com",
                    i % 100, 10_000 + i * 37, 251_000_000 + i, 24_000_000 + i, i % 100,
                    236_000_000 + i, 297_000_000 + i, (i * 7) % 100, 2_000 + i, 92_000 + i
                ),
                0.0,
                1,
            )
        })
        .collect();
    println!("\neSoft-style telemetry zone:");
    score_zone(&miner, &snapshot(&telemetry), "device.trans.manage.esoft.com");

    // 3. An ordinary popular site: few stable names, healthy hit rates.
    let popular: Vec<(String, f64, u32)> = [
        ("www.wikipedia.org", 0.96, 250),
        ("m.wikipedia.org", 0.93, 120),
        ("upload.wikipedia.org", 0.91, 180),
        ("login.wikipedia.org", 0.85, 40),
        ("api.wikipedia.org", 0.88, 90),
        ("maps.wikipedia.org", 0.7, 11),
        ("lists.wikipedia.org", 0.5, 4),
        ("stats.wikipedia.org", 0.4, 3),
        ("blog.wikipedia.org", 0.6, 6),
        ("shop.wikipedia.org", 0.3, 2),
        ("mail.wikipedia.org", 0.8, 22),
        ("ns1.wikipedia.org", 0.75, 15),
    ]
    .iter()
    .map(|(n, d, m)| (n.to_string(), *d, *m))
    .collect();
    println!("\nordinary popular site:");
    score_zone(&miner, &snapshot(&popular), "wikipedia.org");
}
