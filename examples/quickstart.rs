//! Quickstart: generate a day of ISP traffic, mine it for disposable
//! zones, and print the ranking.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dnsnoise::core::{DailyPipeline, MinerConfig};
use dnsnoise::workload::{Scenario, ScenarioConfig};

fn main() {
    // A late-2011-like workload at 1/4 of the repository's report scale.
    // Ground truth (which zones really are disposable) comes for free with
    // the synthetic trace, so the run can grade itself at the end.
    let config = ScenarioConfig::paper_epoch(1.0).with_scale(0.25);
    let scenario = Scenario::new(config, 42);

    println!("scenario models:");
    for line in scenario.describe_models() {
        println!("  - {line}");
    }

    // The daily pipeline of the paper's Fig. 10: resolver-cluster
    // simulation -> domain name tree -> LAD-tree classifier (trained on
    // labeled zones) -> Algorithm 1 -> ranked findings.
    let mut pipeline = DailyPipeline::new(MinerConfig::default());
    let report = pipeline.run_day(&scenario, 0);

    println!("\ntop disposable zones found:");
    for finding in report.ranking.iter().take(15) {
        println!(
            "  {:55} depth {:2}  confidence {:.2}  {} names",
            finding.zone.to_string(),
            finding.depth,
            finding.confidence,
            finding.members
        );
    }

    println!("\nfound {} zones under {} unique 2LDs", report.found.len(), report.unique_2lds);
    println!(
        "vs ground truth: TPR {:.1}%  FPR {:.1}%  precision {:.1}%",
        report.tpr() * 100.0,
        report.fpr() * 100.0,
        report.precision() * 100.0
    );
}
