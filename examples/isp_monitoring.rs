//! Multi-day ISP monitoring: the paper's operational deployment.
//!
//! Simulates a resolver cluster over a week of growing traffic, mines
//! every day with a classifier trained on day 0, and tracks how the
//! discovered-zone population and the passive-DNS store evolve — the
//! combination of the paper's Fig. 10 pipeline with its §VI-C storage
//! observations.
//!
//! ```text
//! cargo run --release --example isp_monitoring
//! ```

use dnsnoise::core::{CampaignTracker, DailyPipeline, MinerConfig};
use dnsnoise::dns::{Record, SuffixList, Ttl};
use dnsnoise::pdns::RpDns;
use dnsnoise::resolver::{ResolverSim, SimConfig};
use dnsnoise::workload::{Scenario, ScenarioConfig};

fn main() {
    let scenario = Scenario::new(ScenarioConfig::paper_epoch(0.9).with_scale(0.15), 2024);
    let gt = scenario.ground_truth();

    // One simulator for passive-DNS collection (kept warm across days)…
    let mut pdns_sim = ResolverSim::new(SimConfig::default());
    let mut store = RpDns::new();
    // …and the mining pipeline with its own cluster.
    let mut pipeline = DailyPipeline::new(MinerConfig::default());

    let mut campaign = CampaignTracker::new();
    println!(
        "day | new zones | cumulative zones | TPR    | new RRs | store size | disposable share"
    );
    println!(
        "----|-----------|------------------|--------|---------|------------|-----------------"
    );

    for day in 0..7 {
        // Mining.
        let report = pipeline.run_day(&scenario, day);
        campaign.ingest(&report);

        // Passive-DNS accounting on the same day's traffic.
        let trace = scenario.generate_day(day);
        let day_report = pdns_sim.day(&trace).ground_truth(gt).run();
        let mut new_rrs = 0u64;
        for (key, _) in day_report.rr_stats.iter() {
            let rr =
                Record::new(key.name.clone(), key.qtype, Ttl::from_secs(60), key.rdata.clone());
            if store.observe(&rr, day) {
                new_rrs += 1;
            }
        }
        let disposable = store.count_matching(|k| gt.is_disposable_name(&k.name));
        println!(
            "{:>3} | {:>9} | {:>16} | {:>5.1}% | {:>7} | {:>10} | {:>15.1}%",
            day + 1,
            campaign.new_on_day(day),
            campaign.zone_count(),
            report.tpr() * 100.0,
            new_rrs,
            store.len(),
            disposable as f64 / store.len().max(1) as f64 * 100.0,
        );
    }

    println!("\nafter one week:");
    println!(
        "  {} distinct (zone, depth) pairs discovered under {} unique 2LDs",
        campaign.zone_count(),
        campaign.unique_2lds(&SuffixList::builtin())
    );
    println!("  {} zones confirmed on every day", campaign.stable_zones(7).count());
    println!(
        "  {} distinct records in the pDNS store ({} bytes modelled)",
        store.len(),
        store.storage_bytes()
    );
    println!("\ntop stable zones:");
    for h in campaign.ranking().into_iter().take(8) {
        println!(
            "  {:55} depth {:2}  {}d seen  peak {:.2}  {} names",
            h.zone.to_string(),
            h.depth,
            h.days_seen,
            h.peak_confidence,
            h.total_names
        );
    }
}
