#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer would run, in the order that fails
# fastest. All cargo invocations are --offline because the workspace
# vendors its dependencies under third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release ==" >&2
cargo build --release --offline

echo "== cargo test ==" >&2
cargo test -q --offline

echo "== cargo clippy -D warnings ==" >&2
cargo clippy --offline -- -D warnings

echo "== cargo fmt --check ==" >&2
cargo fmt --check

echo "ok" >&2
