#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer would run, in the order that fails
# fastest. All cargo invocations are --offline because the workspace
# vendors its dependencies under third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dnsnoise-lint (determinism & invariant linter) ==" >&2
# Replaces the old grep gates (deprecated run_day_* call sites, overload
# fields in the baseline export) with named, suppressible rules plus
# determinism checks no grep could express — including the call-graph
# no-panic certification pass over the durability and wire-decode
# surfaces. See DESIGN.md §static analysis.
cargo run -q --release --offline -p dnsnoise-lint

echo "== dnsnoise-lint --check-allowlist (no stale suppressions) ==" >&2
cargo run -q --release --offline -p dnsnoise-lint -- --check-allowlist
grep -q '"bench": "lint"' BENCH_lint.json \
    || { echo "error: BENCH_lint.json missing or malformed" >&2; exit 1; }

echo "== cargo build --release ==" >&2
cargo build --release --offline

echo "== simulate --metrics smoke (byte-identical across --threads) ==" >&2
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/dnsnoise generate --scale 0.01 --seed 3 --out "$smoke_dir/day.trace" 2>/dev/null
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" \
    --threads 1 --buckets 8 --metrics "$smoke_dir/m1.json" >/dev/null 2>&1
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" \
    --threads 4 --buckets 8 --metrics "$smoke_dir/m4.json" >/dev/null 2>&1
diff "$smoke_dir/m1.json" "$smoke_dir/m4.json" >&2

echo "== simulate --attack smoke (admission control, byte-identical across --threads) ==" >&2
attack='seed=9; victim=flood.example; labellen=16; clients=300; surge=0,86400,25'
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" --members 2 \
    --attack "$attack" --rrl --queue-depth 16 --service-rate 1 \
    --threads 1 --buckets 8 --metrics "$smoke_dir/a1.json" >"$smoke_dir/a1.txt" 2>/dev/null
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" --members 2 \
    --attack "$attack" --rrl --queue-depth 16 --service-rate 1 \
    --threads 4 --buckets 8 --metrics "$smoke_dir/a4.json" >"$smoke_dir/a4.txt" 2>/dev/null
diff "$smoke_dir/a1.json" "$smoke_dir/a4.json" >&2
diff "$smoke_dir/a1.txt" "$smoke_dir/a4.txt" >&2
grep -q -- '-- overload --' "$smoke_dir/a1.txt" \
    || { echo "error: overload section missing from attack smoke" >&2; exit 1; }
grep -Eq 'shed attack/legit: [1-9]' "$smoke_dir/a1.txt" \
    || { echo "error: attack smoke shed nothing" >&2; exit 1; }

echo "== ingest corruption smoke (1% damage, byte-identical across --threads) ==" >&2
./target/release/dnsnoise generate --scale 0.01 --seed 3 --capture pcap \
    --corrupt 0.01 --corrupt-seed 7 --out "$smoke_dir/day.pcap" 2>/dev/null
./target/release/dnsnoise ingest "$smoke_dir/day.pcap" --threads 1 \
    -o "$smoke_dir/i1.trace" 2>"$smoke_dir/ledger.txt"
./target/release/dnsnoise ingest "$smoke_dir/day.pcap" --threads 4 \
    -o "$smoke_dir/i4.trace" 2>/dev/null
diff "$smoke_dir/i1.trace" "$smoke_dir/i4.trace" >&2
grep -q 'conserved' "$smoke_dir/ledger.txt" \
    || { echo "error: ingest ledger did not conserve bytes" >&2; exit 1; }
total=$(./target/release/dnsnoise generate --scale 0.01 --seed 3 --out /dev/stdout 2>/dev/null | grep -cv '^#') || total=0
kept=$(grep -cv '^#' "$smoke_dir/i1.trace") || kept=0
[ "$kept" -ge $((total * 95 / 100)) ] \
    || { echo "error: ingest recovered $kept/$total events (<95%) from 1% corruption" >&2; exit 1; }

echo "== stream smoke (batch-vs-stream agreement, conservation, determinism) ==" >&2
./target/release/dnsnoise train --scale 0.02 --seed 3 --out "$smoke_dir/model.txt" 2>/dev/null
./target/release/dnsnoise generate --scale 0.02 --seed 3 --day 1 \
    --out "$smoke_dir/day1.trace" 2>/dev/null
# Oversized sketches: the streaming findings must match batch mining
# zone for zone on the same trace and model.
./target/release/dnsnoise stream --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" --cm-width 1048576 >"$smoke_dir/s1.txt"
./target/release/dnsnoise stream --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" --cm-width 1048576 >"$smoke_dir/s2.txt"
diff "$smoke_dir/s1.txt" "$smoke_dir/s2.txt" >&2
grep -q '(conserved)' "$smoke_dir/s1.txt" \
    || { echo "error: stream smoke did not conserve events" >&2; exit 1; }
./target/release/dnsnoise mine --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" >"$smoke_dir/mine.tsv" 2>/dev/null
awk -F'\t' 'NR>1 {print $1, "depth="$2}' "$smoke_dir/mine.tsv" | sort >"$smoke_dir/zones.batch"
awk '/^-- final --/{f=1} f && /^finding = /{print $3, $4}' "$smoke_dir/s1.txt" \
    | sort >"$smoke_dir/zones.stream"
diff "$smoke_dir/zones.batch" "$smoke_dir/zones.stream" >&2 \
    || { echo "error: stream findings diverge from batch mining" >&2; exit 1; }
[ -s "$smoke_dir/zones.batch" ] \
    || { echo "error: stream smoke found no zones to compare" >&2; exit 1; }
grep -q 'conserved' BENCH_stream.json \
    || { echo "error: BENCH_stream.json missing its conservation line" >&2; exit 1; }

echo "== pdns store smoke (miner output identical across --store memory|disk) ==" >&2
# Same day-1 trace and model as the stream smoke: stdout must be
# byte-identical whichever rpDNS backend dedups behind the miner, and the
# disk backend's summary (stderr) must report its learned-index runs.
./target/release/dnsnoise stream --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" --cm-width 1048576 \
    --store memory >"$smoke_dir/sm.txt" 2>/dev/null
./target/release/dnsnoise stream --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" --cm-width 1048576 \
    --store disk --store-path "$smoke_dir/pdns" \
    >"$smoke_dir/sd.txt" 2>"$smoke_dir/sd.log"
diff "$smoke_dir/s1.txt" "$smoke_dir/sm.txt" >&2
diff "$smoke_dir/s1.txt" "$smoke_dir/sd.txt" >&2
grep -q 'rpdns store: backend=disk' "$smoke_dir/sd.log" \
    || { echo "error: disk store summary missing from stream stderr" >&2; exit 1; }
ls "$smoke_dir/pdns" | grep -q 'run-.*\.bin' \
    || { echo "error: disk store spilled no run files" >&2; exit 1; }
grep -q '"bench": "pdns"' BENCH_pdns.json \
    || { echo "error: BENCH_pdns.json missing or malformed" >&2; exit 1; }

echo "== crash/resume smoke (kill mid-day, resume from checkpoint, fsck) ==" >&2
# A stream killed mid-day by --die-after (simulating SIGKILL) and resumed
# from its on-disk checkpoint must print the exact bytes of the
# uninterrupted run, and the crashed spill directory must heal to a clean
# fsck — the CLI face of the crash-at-every-IO-point recovery tests.
events=$(grep -cv '^#' "$smoke_dir/day1.trace")
if ./target/release/dnsnoise stream --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" --cm-width 1048576 \
    --store disk --store-path "$smoke_dir/pdns-crash" \
    --checkpoint "$smoke_dir/ckpt" --die-after $((events / 2)) \
    >/dev/null 2>/dev/null; then
    echo "error: --die-after $((events / 2)) did not kill the stream" >&2; exit 1
fi
./target/release/dnsnoise stream --trace "$smoke_dir/day1.trace" \
    --model "$smoke_dir/model.txt" --cm-width 1048576 \
    --store disk --store-path "$smoke_dir/pdns-crash" \
    --checkpoint "$smoke_dir/ckpt" >"$smoke_dir/sr.txt" 2>"$smoke_dir/sr.log"
grep -q 'resuming from checkpoint' "$smoke_dir/sr.log" \
    || { echo "error: resumed stream did not load the checkpoint" >&2; exit 1; }
diff "$smoke_dir/s1.txt" "$smoke_dir/sr.txt" >&2 \
    || { echo "error: resumed stream diverged from the uninterrupted run" >&2; exit 1; }
./target/release/dnsnoise fsck "$smoke_dir/pdns-crash" >"$smoke_dir/fsck.txt" \
    || { echo "error: fsck found problems after crash+resume" >&2
         cat "$smoke_dir/fsck.txt" >&2; exit 1; }
grep -q '"bench": "recovery"' BENCH_recovery.json \
    || { echo "error: BENCH_recovery.json missing or malformed" >&2; exit 1; }

echo "== cargo test ==" >&2
cargo test -q --offline

echo "== cargo clippy -D warnings ==" >&2
cargo clippy --workspace --offline -- -D warnings

echo "== cargo fmt --check ==" >&2
cargo fmt --check

echo "ok" >&2
