#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer would run, in the order that fails
# fastest. All cargo invocations are --offline because the workspace
# vendors its dependencies under third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== deprecated run_day_* call sites ==" >&2
# Everything in-tree goes through the `ResolverSim::day` builder; the
# `run_day` / `run_day_with_faults` / `run_day_sharded` wrappers exist
# for external callers only and may appear solely inside the resolver
# crate (the wrappers themselves + their equivalence tests). Matches on
# `pipeline.run_day(` are the unrelated `DailyPipeline::run_day` API.
if grep -rn --include='*.rs' -E '\.(run_day_with_faults|run_day_sharded)\(' \
        src tests examples crates/core crates/bench crates/pdns crates/dnssec; then
    echo "error: deprecated sharded/fault entry points used outside crates/resolver" >&2
    exit 1
fi
if grep -rn --include='*.rs' -E '\.run_day\(' \
        src tests examples crates/core crates/bench crates/pdns crates/dnssec \
        | grep -vE '(pipeline|self)\.run_day\('; then
    echo "error: deprecated ResolverSim::run_day used outside crates/resolver" >&2
    exit 1
fi

echo "== cargo build --release ==" >&2
cargo build --release --offline

echo "== simulate --metrics smoke (byte-identical across --threads) ==" >&2
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/dnsnoise generate --scale 0.01 --seed 3 --out "$smoke_dir/day.trace" 2>/dev/null
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" \
    --threads 1 --buckets 8 --metrics "$smoke_dir/m1.json" >/dev/null 2>&1
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" \
    --threads 4 --buckets 8 --metrics "$smoke_dir/m4.json" >/dev/null 2>&1
diff "$smoke_dir/m1.json" "$smoke_dir/m4.json" >&2

echo "== simulate --attack smoke (admission control, byte-identical across --threads) ==" >&2
attack='seed=9; victim=flood.example; labellen=16; clients=300; surge=0,86400,25'
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" --members 2 \
    --attack "$attack" --rrl --queue-depth 16 --service-rate 1 \
    --threads 1 --buckets 8 --metrics "$smoke_dir/a1.json" >"$smoke_dir/a1.txt" 2>/dev/null
./target/release/dnsnoise simulate --trace "$smoke_dir/day.trace" --members 2 \
    --attack "$attack" --rrl --queue-depth 16 --service-rate 1 \
    --threads 4 --buckets 8 --metrics "$smoke_dir/a4.json" >"$smoke_dir/a4.txt" 2>/dev/null
diff "$smoke_dir/a1.json" "$smoke_dir/a4.json" >&2
diff "$smoke_dir/a1.txt" "$smoke_dir/a4.txt" >&2
grep -q -- '-- overload --' "$smoke_dir/a1.txt" \
    || { echo "error: overload section missing from attack smoke" >&2; exit 1; }
grep -Eq 'shed attack/legit: [1-9]' "$smoke_dir/a1.txt" \
    || { echo "error: attack smoke shed nothing" >&2; exit 1; }
# The plain-replay export must not grow overload columns: byte-identical
# output with admission control off is a hard compatibility invariant.
if grep -q 'queue_backlog' "$smoke_dir/m1.json"; then
    echo "error: overload metrics leaked into the baseline export" >&2
    exit 1
fi

echo "== cargo test ==" >&2
cargo test -q --offline

echo "== cargo clippy -D warnings ==" >&2
cargo clippy --workspace --offline -- -D warnings

echo "== cargo fmt --check ==" >&2
cargo fmt --check

echo "ok" >&2
